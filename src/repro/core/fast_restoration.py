"""Batched greedy-restoration engines (the ``kernel="batched"`` path).

The Section 4.2 greedy loops (storage restoration, processing
restoration, and OFF_LOADING's server-side absorption) are specified in
:mod:`repro.core.restoration` / :mod:`repro.core.offload` as scalar
reference implementations built on a lazily-revalidated ``heapq``: every
candidate action is pushed with its score, and each pop recomputes the
candidate's score against current state — stale entries are reinserted,
fresh ones accepted.  At paper scale one restoration run performs ~10^6
heap operations and ~10^6 scalar Eq. 3-5 evaluations.

This module re-implements those loops on flat NumPy arrays while
producing **bit-identical decision sequences** — every eviction, switch
and absorption happens for the same candidate with the same score and
the same tie-break as the scalar path.  Two ideas make that possible:

1. **Dirty-slice rescoring.**  Fresh scores live in a dense ``f`` array
   indexed by candidate key.  An action only perturbs the scores of
   candidates touching the mutated pages, so the engines track a dirty
   set and recompute exactly that slice in bulk (one fused Eq. 3-5
   pipeline + one ``np.bincount`` segment sum whose in-order
   accumulation replays the scalar per-candidate ``+=`` fold
   term-for-term).

2. **A closed form for one lazy pop** (:class:`VectorLazyHeap`).
   Between two state changes the fresh scores are fixed, so one whole
   ``pop_valid`` call — including every dead pop, stale reinsert and
   revalidation along the way — collapses to ``W = min(A, B)`` where
   ``A`` is the first entry in ``(score, counter)`` order that is alive
   and revalidates (``f[k] <= stored + tol``), and ``B`` is the
   minimum-``f`` stale-but-alive entry before ``A`` (first occurrence
   on ties; it wins only if strictly below ``A``'s stored score because
   its reinsert counter is newer).  Entries before the winner are
   consumed: dead ones dropped, stale ones reinserted with fresh scores
   in scan order — exactly what the scalar loop does one pop at a time.

See DESIGN.md Appendix D for the full argument.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import Allocation
from repro.core.constraints import local_processing_load, storage_used
from repro.core.cost_model import CostModel
from repro.core.fast_partition import (
    partition_pages_batched,
    partition_pages_multipath,
)
from repro.core.partition import partition_page, partition_page_streams

__all__ = [
    "VectorLazyHeap",
    "restore_storage_batched",
    "restore_processing_batched",
    "absorb_extra_workload_batched",
]

#: kept in lockstep with ``restoration._TOL`` / ``offload._TOL``
_TOL = 1e-9

_REFILL = object()  # internal sentinel: scan exhausted the active array


class VectorLazyHeap:
    """Array-backed priority queue replicating ``_LazyHeap`` semantics.

    Entries are ``(score, counter, key)`` with a monotonically increasing
    counter as the tie-break, exactly like the scalar heap.  The entries
    are split into a small sorted *active* prefix (everything with score
    ``<= tau``) scanned vectorised, and a *reserve* holding the tail
    (score ``> tau``).  The reserve is log-structured: pushes land in a
    small unsorted buffer, full buffers become sorted runs, and runs of
    similar size are merged so at most ``O(log n)`` exist — refilling the
    active array then peels only the run *fronts* (the globally smallest
    entries are always within the first ``target`` of each run), keeping
    every reserve operation amortised instead of rescanning the whole
    tail.

    ``purge_dead``, when given, is a live reference to the engine's
    by-key aliveness mask under the contract that **death is permanent**
    (storage evictions and processing switches never resurrect a key).
    Dead entries can never be accepted and are invisible to every
    decision the scalar heap makes, so the reserve drops them whenever a
    merge or refill touches them anyway — the multiset of *live*
    entries, and hence the pop sequence, is untouched.  OFF_LOADING
    reanimates keys (``_try_make_room`` un-marks victims) and therefore
    must not pass it.

    ``pop_round`` performs one full ``pop_valid`` equivalent: given the
    current fresh-score array ``f`` and aliveness mask, it returns the
    same ``(fresh_score, key)`` the scalar loop would return, consumes
    the same entries, and performs the same stale reinserts with the
    same counter ordering (see the module docstring for the
    ``W = min(A, B)`` argument).  The optional ``dirty``/``rescore``
    hooks refresh stale slices of ``f`` lazily, chunk by chunk, as the
    scan reaches them — candidates the scan never touches are never
    rescored, exactly like the scalar heap's revalidate-on-pop.
    """

    def __init__(
        self, active_target: int = 1024, purge_dead: np.ndarray | None = None
    ):
        self._s = np.empty(0, dtype=np.float64)
        self._c = np.empty(0, dtype=np.int64)
        self._k = np.empty(0, dtype=np.int64)
        self._h = 0  # consumed prefix of the active arrays
        self._tau = np.inf  # active/reserve score boundary
        self._buf: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._buf_n = 0  # entries sitting in the unsorted buffer
        self._runs: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._count = 0  # next push counter (scalar ``itertools.count``)
        self._n = 0  # unconsumed entries
        self._target = int(active_target)
        self._spill_at = 4 * self._target
        self._buf_max = 32 * self._target
        self._purge = purge_dead

    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def push_batch(self, scores: np.ndarray, keys: np.ndarray) -> None:
        """Push entries in order; counters are assigned in input order."""
        scores = np.asarray(scores, dtype=np.float64)
        keys = np.asarray(keys, dtype=np.int64)
        self._push_raw(scores, keys, skip=-1)

    def _push_raw(self, scores: np.ndarray, keys: np.ndarray, skip: int) -> None:
        """Insert a batch; ``skip >= 0`` consumes that row's counter but
        drops the entry (an accepted winner leaves the heap, yet its
        reinsert slot still advanced the scalar counter)."""
        n = len(scores)
        if n == 0:
            return
        counters = np.arange(self._count, self._count + n, dtype=np.int64)
        self._count += n
        if skip >= 0:
            keep = np.ones(n, dtype=bool)
            keep[skip] = False
            scores = scores[keep]
            counters = counters[keep]
            keys = keys[keep]
            n -= 1
            if n == 0:
                return
        # stable sort by score: equal scores keep input (= counter) order,
        # so the batch itself ends up in (score, counter) order
        order = np.argsort(scores, kind="stable")
        scores = scores[order]
        counters = counters[order]
        keys = keys[order]
        self._n += n
        if np.isinf(self._tau):
            lo = n
        else:
            lo = int(np.searchsorted(scores, self._tau, side="right"))
        if lo < n:
            self._buf.append((scores[lo:], counters[lo:], keys[lo:]))
            self._buf_n += n - lo
            if self._buf_n >= self._buf_max:
                self._flush_buf()
        if lo > 0:
            self._merge_active(scores[:lo], counters[:lo], keys[:lo])
            self._maybe_spill()

    def _drop_dead(self, s, c, k):
        """Filter a reserve slice through the permanent-death mask."""
        keep = self._purge[k]
        if not keep.all():
            self._n -= len(k) - int(np.count_nonzero(keep))
            return s[keep], c[keep], k[keep]
        return s, c, k

    def _flush_buf(self) -> None:
        """Sort the push buffer into one reserve run (amortised)."""
        if not self._buf:
            return
        if len(self._buf) == 1:
            bs, bc, bk = self._buf[0]
        else:
            bs = np.concatenate([t[0] for t in self._buf])
            bc = np.concatenate([t[1] for t in self._buf])
            bk = np.concatenate([t[2] for t in self._buf])
        self._buf = []
        self._buf_n = 0
        if self._purge is not None:
            bs, bc, bk = self._drop_dead(bs, bc, bk)
            if not len(bk):
                return
        # the concatenated buffer is counter-ordered between batches and
        # (score, counter)-ordered within each, so a stable sort on score
        # alone yields exact (score, counter) order — no lexsort needed
        order = np.argsort(bs, kind="stable")
        self._runs.append((bs[order], bc[order], bk[order]))
        self._balance_runs()

    def _balance_runs(self) -> None:
        """Merge similar-sized runs so at most O(log n) exist.  Each
        entry takes part in O(log n) merges over its reserve lifetime."""
        runs = self._runs
        while len(runs) >= 2 and len(runs[-2][0]) <= 2 * len(runs[-1][0]):
            s2, c2, k2 = runs.pop()
            s1, c1, k1 = runs.pop()
            s = np.concatenate((s1, s2))
            c = np.concatenate((c1, c2))
            k = np.concatenate((k1, k2))
            if self._purge is not None:
                s, c, k = self._drop_dead(s, c, k)
            # timsort gallops through the two pre-sorted halves in ~O(n);
            # ties keep concat order, which is only wrong if a tie block
            # mixes the halves with inverted counters — detect exactly
            # that and fall back to the full (score, counter) lexsort
            order = np.argsort(s, kind="stable")
            ms, mc = s[order], c[order]
            if np.any((ms[1:] == ms[:-1]) & (mc[1:] < mc[:-1])):
                order = np.lexsort((c, s))
                ms, mc = s[order], c[order]
            runs.append((ms, mc, k[order]))

    def _merge_active(self, bs, bc, bk) -> None:
        h = self._h
        rs, rc, rk = self._s[h:], self._c[h:], self._k[h:]
        # new entries have strictly larger counters than every existing
        # one, so on score ties they sort after: side="right"
        pos = np.searchsorted(rs, bs, side="right")
        tgt = pos + np.arange(len(bs))
        total = len(rs) + len(bs)
        out_s = np.empty(total, dtype=np.float64)
        out_c = np.empty(total, dtype=np.int64)
        out_k = np.empty(total, dtype=np.int64)
        mask = np.ones(total, dtype=bool)
        mask[tgt] = False
        out_s[tgt] = bs
        out_c[tgt] = bc
        out_k[tgt] = bk
        out_s[mask] = rs
        out_c[mask] = rc
        out_k[mask] = rk
        self._s, self._c, self._k = out_s, out_c, out_k
        self._h = 0

    def _maybe_spill(self) -> None:
        """Move the active tail to a reserve chunk when it outgrows the
        merge-friendly size (keeps per-push merge cost bounded)."""
        h = self._h
        if len(self._s) - h <= self._spill_at:
            return
        v = float(self._s[h + self._target - 1])
        cut = h + int(np.searchsorted(self._s[h:], v, side="right"))
        if cut >= len(self._s):
            return
        # the active tail is already (score, counter)-sorted: a run as-is
        self._runs.append(
            (self._s[cut:].copy(), self._c[cut:].copy(), self._k[cut:].copy())
        )
        self._balance_runs()
        self._s = self._s[h:cut].copy()
        self._c = self._c[h:cut].copy()
        self._k = self._k[h:cut].copy()
        self._h = 0
        self._tau = v  # reserve invariant: every reserve entry is > tau

    def _has_reserve(self) -> bool:
        return bool(self._buf_n or self._runs)

    def _refill(self) -> None:
        """Pull the globally smallest reserve entries into the active
        array.  Every run is sorted, so the ``target`` smallest reserve
        entries all sit within the first ``target`` of each run: one
        ``np.partition`` over those fronts finds the pivot and each run
        hands over its ``<= pivot`` prefix (ties included), preserving
        the tau invariant exactly without touching the runs' tails."""
        T = self._target
        self._flush_buf()
        runs = self._runs
        if not runs:
            self._tau = np.inf  # reserve empty: future pushes go active
            return
        if len(runs) == 1:
            cat = runs[0][0][:T]
        else:
            cat = np.concatenate([r[0][:T] for r in runs])
        if len(cat) > T:
            v = float(np.partition(cat, T - 1)[T - 1])
        else:
            v = np.inf
        parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        rest: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for s, c, k in runs:
            cnt = (
                len(s)
                if np.isinf(v)
                else int(np.searchsorted(s, v, side="right"))
            )
            if cnt:
                parts.append((s[:cnt], c[:cnt], k[:cnt]))
            if cnt < len(s):
                rest.append((s[cnt:], c[cnt:], k[cnt:]))
        self._runs = rest
        if len(parts) == 1:
            ts, tc, tk = parts[0]
        else:
            ts = np.concatenate([p[0] for p in parts])
            tc = np.concatenate([p[1] for p in parts])
            tk = np.concatenate([p[2] for p in parts])
        if self._purge is not None:
            ts, tc, tk = self._drop_dead(ts, tc, tk)
        order = np.argsort(ts, kind="stable")
        ms, mc = ts[order], tc[order]
        if np.any((ms[1:] == ms[:-1]) & (mc[1:] < mc[:-1])):
            order = np.lexsort((tc, ts))
        # every taken entry is > old tau, so appending keeps (s, c) order
        self._s = np.concatenate((self._s[self._h :], ts[order]))
        self._c = np.concatenate((self._c[self._h :], tc[order]))
        self._k = np.concatenate((self._k[self._h :], tk[order]))
        self._h = 0
        self._tau = v

    # ------------------------------------------------------------------
    # extraction
    # ------------------------------------------------------------------
    def pop_round(
        self,
        f: np.ndarray,
        alive: np.ndarray,
        tol: float = _TOL,
        dirty: np.ndarray | None = None,
        rescore=None,
    ) -> tuple[float, int] | None:
        """One scalar ``pop_valid`` equivalent against fresh scores ``f``
        and aliveness mask ``alive`` (both indexed by key).

        ``dirty``/``rescore``: optional lazy-refresh hooks.  ``dirty`` is
        a by-key staleness mask; as the scan reaches a chunk, the fresh
        scores of its dirty alive keys are recomputed in one
        ``rescore(keys)`` call and the flags cleared — the batched
        mirror of the scalar heap recomputing a candidate's score the
        moment it pops."""
        while True:
            out = self._scan(f, alive, tol, dirty, rescore)
            if out is not _REFILL:
                return out
            self._refill()

    def _scan(self, f, alive, tol, dirty, rescore):
        s, k, h = self._s, self._k, self._h
        n = len(s)
        # A = first alive entry whose fresh score revalidates
        a_idx = -1
        pos = h
        chunk = 128
        while pos < n:
            end = min(n, pos + chunk)
            kk = k[pos:end]
            ok = alive[kk]
            if ok.any():
                if dirty is not None:
                    dm = dirty[kk] & ok
                    if dm.any():
                        sel = kk[dm]
                        f[sel] = rescore(sel)
                        dirty[sel] = False
                acc = ok & (f[kk] <= s[pos:end] + tol)
                nz = acc.nonzero()[0]
                if len(nz):
                    a_idx = pos + int(nz[0])
                    break
            pos = end
            chunk = min(chunk * 4, 1 << 16)
        if a_idx < 0 and self._has_reserve():
            return _REFILL  # the scalar scan would keep popping
        hi = a_idx if a_idx >= 0 else n
        ks = k[h:hi]
        al = alive[ks]
        st = al.nonzero()[0]  # stale-but-alive prefix entries
        fB = None
        if len(st):
            fs = f[ks[st]]
            b = int(np.argmin(fs))  # first occurrence wins ties
            fB = float(fs[b])
        if a_idx >= 0 and (fB is None or not (fB < float(s[a_idx]))):
            # A wins (a reinserted B at fB == s_A has a newer counter and
            # would pop after A — strict inequality is the exact boundary)
            kA = int(k[a_idx])
            out = (float(f[kA]), kA)
            self._n -= a_idx + 1 - h
            self._h = a_idx + 1
            if len(st):
                # prefix stale entries were reinserted before A popped
                self._push_raw(fs, ks[st].astype(np.int64), skip=-1)
            return out
        if fB is not None:
            # B wins: the scalar loop pops every entry with score <= fB
            # (their counters predate B's reinsert), reinserting the
            # stale ones, then accepts B's reinserted entry
            ss = s[h:hi]
            cut = int(np.searchsorted(ss, fB, side="right"))
            within = st[st < cut]
            vals = f[ks[within]]
            keys2 = ks[within].astype(np.int64)
            bpos = int(np.searchsorted(within, st[b]))
            kB = int(keys2[bpos])
            self._n -= cut
            self._h = h + cut
            self._push_raw(vals, keys2, skip=bpos)
            return (fB, kB)
        # every remaining entry is dead and the reserve is empty
        self._n -= n - h
        self._h = n
        return None


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------
def _expand(starts: np.ndarray, counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Ragged-expand CSR (starts, counts) rows into (index, owner) pairs."""
    counts = np.asarray(counts, dtype=np.intp)
    if len(counts) == 1:
        c0 = int(counts[0])
        s0 = int(starts[0])
        return (
            np.arange(s0, s0 + c0, dtype=np.intp),
            np.zeros(c0, dtype=np.intp),
        )
    total = int(counts.sum())
    owner = np.repeat(np.arange(len(counts), dtype=np.intp), counts)
    if total == 0:
        return np.empty(0, dtype=np.intp), owner
    cum = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(total, dtype=np.intp) - np.repeat(cum, counts)
    idx = np.repeat(np.asarray(starts, dtype=np.intp), counts) + within
    return idx, owner


def _group_by_object(
    entry_ids: np.ndarray, objects: np.ndarray, n_objects: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group a server's flat entries by object id.

    Returns (entries sorted by object — ascending entry id within each
    object, matching ``ReverseIndex`` —, per-object start, per-object
    count)."""
    order = np.argsort(objects, kind="stable")
    grouped_entries = entry_ids[order]
    grouped_objs = objects[order]
    starts = np.zeros(n_objects, dtype=np.intp)
    counts = np.zeros(n_objects, dtype=np.intp)
    if len(grouped_objs):
        edge = np.empty(len(grouped_objs), dtype=bool)
        edge[0] = True
        np.not_equal(grouped_objs[1:], grouped_objs[:-1], out=edge[1:])
        first = np.flatnonzero(edge)
        uniq = grouped_objs[first]
        starts[uniq] = first
        counts[uniq] = np.diff(np.append(first, len(grouped_objs)))
    return grouped_entries, starts, counts


def _bump(counters: dict | None, n: int) -> None:
    if counters is not None and n:
        counters["batches"] = counters.get("batches", 0) + 1
        counters["candidates"] = counters.get("candidates", 0) + n


# ----------------------------------------------------------------------
# storage restoration (Eq. 10)
# ----------------------------------------------------------------------
class _EvictionScorer:
    """Bulk eviction-delta evaluation for one server.

    Precomputes a per-compulsory-entry attribute matrix (one 2-D fancy
    gather per flush) and per-object CSR group tables so that scoring a
    set of candidate objects is a single fused Eq. 3-5 pipeline plus one
    ``np.bincount`` segment sum.  The bincount accumulates weights
    sequentially in input order — compulsory terms in ascending entry
    order, then optional terms — replaying the scalar
    ``_eviction_delta`` ``+=`` fold bit-for-bit.
    """

    def __init__(self, cost: CostModel, alloc: Allocation, server_id: int):
        m = alloc.model
        self.m = m
        ctx = alloc.ctx
        self.n_rem = ctx.n_streams - 1
        # the per-server object-grouped CSR tables live in the shared
        # EvalContext (same layout _group_by_object produced per phase)
        self.ce, self.cstarts, self.ccounts = ctx.comp_group(server_id)
        pg = ctx.comp_pages[self.ce].astype(np.intp)
        self.pg = pg
        # rows: ovhd_l, spb_l, [ovhd_r, spb_r per remote stream],
        # html, alpha1*freq, size — the k=2 layout is the classic
        # 7-row [ovhd_l, spb_l, ovhd_repo, spb_repo, html, a1f, sz]
        # because stream 1's columns alias the repository's.
        rows = [ctx.page_ovhd_local[pg], ctx.page_spb_local[pg]]
        for r in range(self.n_rem):
            rows.append(ctx.page_ovhd_streams[r][pg])
            rows.append(ctx.page_spb_streams[r][pg])
        rows.extend(
            [
                ctx.html_sizes[pg],
                cost.alpha1 * ctx.comp_freq[self.ce],
                ctx.comp_sizes[self.ce],
            ]
        )
        self.attrs = np.vstack(rows)
        self.oe, self.ostarts, self.ocounts = ctx.opt_group(server_id)
        self.oterm = cost.bulk_optional_entry_delta(self.oe, to_local=False)
        self.sizes = m.sizes

    def comp_entries(self, k: int) -> np.ndarray:
        """This object's compulsory entries on the server (ascending)."""
        s = self.cstarts[k]
        return self.ce[s : s + self.ccounts[k]]

    def opt_entries(self, k: int) -> np.ndarray:
        s = self.ostarts[k]
        return self.oe[s : s + self.ocounts[k]]

    def flush(
        self,
        cand: np.ndarray,
        comp_local: np.ndarray,
        opt_local: np.ndarray,
        LB: np.ndarray,
        RBs: list[np.ndarray],
        amortise: bool,
    ) -> np.ndarray:
        """Fresh eviction scores for candidate objects ``cand``.

        ``RBs[r-1]`` is stream ``r``'s per-page byte totals; at k=2 the
        one-element list runs the classic two-stream expressions.  At
        k>2 each marked entry is scored as moving to the remote stream
        that ends up shortest after receiving it (the scalar
        ``best_stream`` rule, ties to the lowest index).
        """
        idx, owner = _expand(self.cstarts[cand], self.ccounts[cand])
        if len(idx):
            mk = comp_local[self.ce[idx]]
            idx = idx[mk]
            owner = owner[mk]
        pg = self.pg[idx]
        A = self.attrs[:, idx]
        ovl, spl = A[0], A[1]
        html, a1f, sz = A[-3], A[-2], A[-1]
        lb = LB[pg]
        tl = ovl + spl * (html + lb)
        tl2 = ovl + spl * (html + (lb - sz))
        if self.n_rem == 1:
            ovr, spr = A[2], A[3]
            rb = RBs[0][pg]
            tr = ovr + spr * rb
            old = np.maximum(tl, tr)
            tr2 = ovr + spr * (rb + sz)
            new = np.maximum(tl2, tr2)
        else:
            T = np.empty((self.n_rem, len(idx)))
            T2 = np.empty_like(T)
            for r in range(self.n_rem):
                rb = RBs[r][pg]
                T[r] = A[2 + 2 * r] + A[3 + 2 * r] * rb
                T2[r] = A[2 + 2 * r] + A[3 + 2 * r] * (rb + sz)
            old = np.maximum(tl, T.max(axis=0)) if len(idx) else tl
            best = T2.argmin(axis=0)
            ar = np.arange(T.shape[1])
            T[best, ar] = T2[best, ar]
            new = np.maximum(tl2, T.max(axis=0)) if len(idx) else tl2
        wc = a1f * (new - old)
        ocounts = self.ocounts[cand]
        if ocounts.any():
            oidx, oowner = _expand(self.ostarts[cand], ocounts)
            if len(oidx):
                omk = opt_local[self.oe[oidx]]
                oidx = oidx[omk]
                oowner = oowner[omk]
            ow = self.oterm[oidx]
            sums = np.bincount(
                np.concatenate((owner, oowner)),
                weights=np.concatenate((wc, ow)),
                minlength=len(cand),
            )
        else:
            # no optional terms: the concatenated fold degenerates to
            # the compulsory stream — same accumulation order
            sums = np.bincount(owner, weights=wc, minlength=len(cand))
        if amortise:
            sums = sums / self.sizes[cand]
        return sums


def restore_storage_batched(
    alloc: Allocation,
    cost: CostModel,
    server_id: int,
    amortise: bool = True,
    batch_min_pages: int = 8,
    counters: dict | None = None,
):
    """Batched twin of ``restoration._restore_storage_one_server``.

    Produces the identical eviction sequence, statistics and final
    allocation (including ``replicas`` set mutation history — flips go
    through the per-entry setters in the scalar order).
    """
    # deferred: restoration imports this module lazily for dispatch
    from repro.core.restoration import InfeasibleError, StorageRestorationStats

    m = alloc.model
    stats = StorageRestorationStats()
    capacity = m.server_storage[server_id]
    html_bytes = (
        float(
            m.html_sizes[
                np.asarray(m.pages_by_server[server_id], dtype=np.intp)
            ].sum()
        )
        if m.pages_by_server[server_id]
        else 0.0
    )
    used = html_bytes + alloc.stored_bytes(server_id)
    if used <= capacity + _TOL:
        return stats
    if html_bytes > capacity + _TOL:
        raise InfeasibleError(
            f"server {server_id}: hosted HTML ({html_bytes:.0f} B) alone "
            f"exceeds storage capacity ({capacity:.0f} B)"
        )

    scorer = _EvictionScorer(cost, alloc, server_id)
    ctx = alloc.ctx
    n_rem = ctx.n_streams - 1
    LB = cost.local_mo_bytes(alloc)
    if n_rem == 1:
        RB = cost.remote_mo_bytes(alloc)
        RBs = [RB]
    else:
        RBs = list(cost.remote_mo_bytes_by_stream(alloc))
        RB = RBs[0]
    comp_stream = alloc.comp_stream
    comp_local = alloc.comp_local
    opt_local = alloc.opt_local
    sizes_list = m.sizes.tolist()
    comp_objects = m.comp_objects
    comp_indptr = m.comp_indptr

    n_obj = len(m.sizes)
    f = np.zeros(n_obj)
    replica_mask = np.zeros(n_obj, dtype=bool)
    # evicted objects never return: dead reserve entries may be purged
    heap = VectorLazyHeap(purge_dead=replica_mask)
    replicas = alloc.replicas[server_id]
    dirty = np.zeros(n_obj, dtype=bool)

    init_keys = np.fromiter(replicas, dtype=np.intp, count=len(replicas))
    replica_mask[init_keys] = True
    vals = scorer.flush(init_keys, comp_local, opt_local, LB, RBs, amortise)
    _bump(counters, len(init_keys))
    f[init_keys] = vals
    heap.push_batch(vals, init_keys)

    allowed_mask = np.zeros(len(comp_objects), dtype=bool)
    rows = alloc.ctx.comp_group(server_id)[0]
    allowed_mask[rows] = np.isin(comp_objects[rows], init_keys)

    def rescore(keys: np.ndarray) -> np.ndarray:
        """Scan-time refresh of candidates whose pages changed without a
        repartition push (the scalar path rescores them lazily on pop)."""
        vals = scorer.flush(keys, comp_local, opt_local, LB, RBs, amortise)
        _bump(counters, len(keys))
        return vals

    def flush_batch(keys: list[int]) -> None:
        """Recompute + push fresh scores (the scalar post-change pushes)."""
        karr = np.asarray(keys, dtype=np.intp)
        vals = scorer.flush(karr, comp_local, opt_local, LB, RBs, amortise)
        _bump(counters, len(karr))
        f[karr] = vals
        heap.push_batch(vals, karr)

    def prepare_repartition(j: int, marks: np.ndarray, streams=None):
        """Diff ``marks`` against the current page state without mutating
        anything.  Page slices are disjoint, so every page of one
        eviction can be diffed up front — the state each diff sees is
        the same one the scalar interleaved flip/diff sequence sees.

        At k>2 ``streams`` is the page's re-partitioned stream vector; a
        remote entry that merely hops streams counts as a change (its
        page's stream totals shift) but does not enter the stale set —
        matching the scalar ``apply_repartition``.
        """
        sl = m.comp_slice(j)
        marks = np.asarray(marks, dtype=bool)
        cur = comp_local[sl.start : sl.stop]
        diff = cur != marks
        offs = diff.nonzero()[0]
        hops = False
        if streams is not None:
            hops = bool(
                np.any(
                    ~cur
                    & ~marks
                    & (comp_stream[sl.start : sl.stop] != streams)
                )
            )
        if not len(offs) and not hops:
            return None  # scalar: ``changed`` stays False, nothing pushed
        objs_page = comp_objects[sl.start : sl.stop]
        # stale set built with the scalar insertion sequence (ascending
        # offsets, flipped-or-still-marked); iteration below replays the
        # scalar's hash-order walk, so it must stay a real set
        stale = set(objs_page[(diff | marks).nonzero()[0]].tolist())
        push_keys = [k2 for k2 in stale if k2 in replicas]
        return (
            j,
            sl.start,
            offs,
            objs_page[offs],
            marks[offs],
            stale,
            push_keys,
            marks if streams is not None else None,
            streams,
        )

    def apply_flips(plan) -> None:
        j, start, offs, flip_objs, flip_new, stale, _, marks_page, streams_page = plan
        if streams_page is None:
            # flips in ascending entry order through the per-entry
            # setter, accumulating the byte totals one move at a time —
            # the scalar float-op sequence exactly
            lb = LB[j]
            rb = RB[j]
            for off, k2, newv in zip(
                offs.tolist(), flip_objs.tolist(), flip_new.tolist()
            ):
                size2 = sizes_list[k2]
                if newv:
                    alloc.set_comp_local(start + off, True)
                    lb += size2
                    rb -= size2
                else:
                    alloc.set_comp_local(start + off, False)
                    lb -= size2
                    rb += size2
            LB[j] = lb
            RB[j] = rb
        else:
            # k>2: one ascending walk interleaving mark flips and stream
            # hops, replaying the scalar ``apply_repartition`` loop
            lb = LB[j]
            for off in range(len(marks_page)):
                e = start + off
                newv = bool(marks_page[off])
                if bool(comp_local[e]) != newv:
                    k2 = int(comp_objects[e])
                    size2 = sizes_list[k2]
                    if newv:
                        r_old = int(comp_stream[e])
                        alloc.set_comp_local(e, True)
                        lb += size2
                        RBs[r_old - 1][j] -= size2
                    else:
                        r = int(streams_page[off])
                        alloc.set_comp_local(e, False)
                        comp_stream[e] = r
                        lb -= size2
                        RBs[r - 1][j] += size2
                elif not newv:
                    r_old = int(comp_stream[e])
                    r = int(streams_page[off])
                    if r_old != r:
                        k2 = int(comp_objects[e])
                        size2 = sizes_list[k2]
                        RBs[r_old - 1][j] -= size2
                        RBs[r - 1][j] += size2
                        comp_stream[e] = r
            LB[j] = lb
        stats.repartitioned_pages += 1
        # the pushed entries carry full fresh scores, so pending dirt on
        # these candidates is settled
        dirty[np.fromiter(stale, dtype=np.intp, count=len(stale))] = False

    def repartition_flipped(pages: list[int]) -> None:
        if len(pages) >= batch_min_pages:
            if n_rem > 1:
                batch_marks, batch_streams, _, _ = partition_pages_multipath(
                    m, page_ids=pages, allowed_mask=allowed_mask
                )
                plans = []
                for j in pages:
                    sl = m.comp_slice(j)
                    plans.append(
                        prepare_repartition(
                            j, batch_marks[sl], batch_streams[sl]
                        )
                    )
            else:
                batch_marks, _, _ = partition_pages_batched(
                    m, page_ids=pages, allowed_mask=allowed_mask
                )
                plans = [
                    prepare_repartition(j, batch_marks[m.comp_slice(j)])
                    for j in pages
                ]
        elif n_rem > 1:
            plans = []
            for j in pages:
                pm, ps, _, _ = partition_page_streams(m, j, allowed=replicas)
                plans.append(prepare_repartition(j, pm, ps))
        else:
            plans = [
                prepare_repartition(j, partition_page(m, j, allowed=replicas)[0])
                for j in pages
            ]
        plans = [p for p in plans if p is not None]
        if not plans:
            return
        # A pushed candidate scores identically whether computed right
        # after its own page's flips or after every page's: a key absent
        # from the other pages' stale sets holds no local marks there, so
        # their byte-total changes never enter its Eq. 3-5 sum.  When the
        # per-page push-key sets are disjoint the pushes therefore fuse
        # into one batch (concatenated in page order — same counters);
        # on overlap, fall back to the scalar flip/push interleave.
        disjoint = True
        if len(plans) > 1:
            seen: set[int] = set()
            for plan in plans:
                for k2 in plan[6]:
                    if k2 in seen:
                        disjoint = False
                        break
                    seen.add(k2)
                if not disjoint:
                    break
        if disjoint:
            for plan in plans:
                apply_flips(plan)
            all_keys = [k2 for plan in plans for k2 in plan[6]]
            if all_keys:
                flush_batch(all_keys)
        else:
            for plan in plans:
                apply_flips(plan)
                if plan[6]:
                    flush_batch(plan[6])

    while used > capacity + _TOL:
        popped = heap.pop_round(f, replica_mask, _TOL, dirty, rescore)
        if popped is None:
            raise InfeasibleError(
                f"server {server_id}: storage constraint unrestorable "
                f"(used {used:.0f} B > capacity {capacity:.0f} B with no "
                "replicas left)"
            )
        delta, k = popped
        size = sizes_list[k]
        comp_e = scorer.comp_entries(k)
        marked = comp_local[comp_e]
        flip_e = comp_e[marked]
        flip_pages = m.comp_pages[flip_e]
        flipped_pages = flip_pages.tolist()
        if n_rem == 1:
            for e, j in zip(flip_e.tolist(), flipped_pages):
                alloc.set_comp_local(e, False)
                LB[j] -= size
                RB[j] += size
        else:
            for e, j in zip(flip_e.tolist(), flipped_pages):
                alloc.set_comp_local(e, False)
                # scalar best_stream rule: lowest time after +size wins,
                # ties to the lowest stream index
                best = 0
                best_t = None
                for r in range(n_rem):
                    t = ctx.page_ovhd_streams[r][j] + ctx.page_spb_streams[
                        r
                    ][j] * (RBs[r][j] + size)
                    if best_t is None or t < best_t:
                        best, best_t = r, t
                comp_stream[e] = best + 1
                LB[j] -= size
                RBs[best][j] += size
        opt_e = scorer.opt_entries(k)
        for e in opt_e[opt_local[opt_e]].tolist():
            alloc.set_opt_local(e, False)
        replicas.discard(k)
        replica_mask[k] = False
        if len(comp_e):
            allowed_mask[comp_e] = False
        used -= size
        stats.evictions += 1
        stats.bytes_freed += size
        stats.objective_delta += delta * size if amortise else delta
        stats.evicted_objects.append((server_id, k))
        if flipped_pages:
            # candidates still marked on the touched pages now score
            # differently; repartition pushes fresh entries for changed
            # pages, flush_dirty covers the unchanged ones before the
            # next pop
            starts = comp_indptr[flip_pages]
            ents, _ = _expand(starts, comp_indptr[flip_pages + 1] - starts)
            dirty[comp_objects[ents[comp_local[ents]]]] = True
            repartition_flipped(flipped_pages)
    return stats


# ----------------------------------------------------------------------
# processing restoration (Eq. 8)
# ----------------------------------------------------------------------
def restore_processing_batched(
    alloc: Allocation,
    cost: CostModel,
    server_id: int,
    counters: dict | None = None,
):
    """Batched twin of ``restoration._restore_processing_one_server``."""
    from repro.core.restoration import InfeasibleError, ProcessingRestorationStats

    m = alloc.model
    stats = ProcessingRestorationStats()
    capacity = float(m.server_capacity[server_id])
    if np.isinf(capacity):
        return stats

    pages_here = np.asarray(m.pages_by_server[server_id], dtype=np.intp)
    html_load = float(m.frequencies[pages_here].sum()) if len(pages_here) else 0.0
    load = float(local_processing_load(alloc)[server_id])
    if load <= capacity + _TOL:
        return stats
    if html_load > capacity + _TOL:
        raise InfeasibleError(
            f"server {server_id}: HTML request load ({html_load:.2f} req/s) "
            f"alone exceeds processing capacity ({capacity:.2f} req/s)"
        )

    ctx = alloc.ctx
    n_rem = ctx.n_streams - 1
    LB = cost.local_mo_bytes(alloc)
    if n_rem == 1:
        RB = cost.remote_mo_bytes(alloc)
        RBs = [RB]
    else:
        RBs = list(cost.remote_mo_bytes_by_stream(alloc))
        RB = RBs[0]
    comp_stream = alloc.comp_stream
    NC = len(m.comp_objects)
    n_keys = NC + len(m.opt_objects)
    f = np.zeros(n_keys)
    alive = np.zeros(n_keys, dtype=bool)
    # switched downloads never come back: dead entries may be purged
    heap = VectorLazyHeap(purge_dead=alive)

    def comp_scores(entries: np.ndarray) -> np.ndarray:
        j = ctx.comp_pages[entries]
        size = ctx.comp_sizes[entries]
        lb = LB[j]
        if n_rem == 1:
            rb = RB[j]
            old = cost.bulk_page_time_from_bytes(j, lb, rb)
            new = cost.bulk_page_time_from_bytes(j, lb - size, rb + size)
        else:
            # move-remote lands on the per-entry best stream (scalar
            # ``page_time_if_moved_remote`` rule)
            sbs = [rb_arr[j] for rb_arr in RBs]
            old = cost.bulk_page_time_from_stream_bytes(j, lb, sbs)
            T = np.empty((n_rem, len(entries)))
            T2 = np.empty_like(T)
            for r in range(n_rem):
                ov = ctx.page_ovhd_streams[r][j]
                sp = ctx.page_spb_streams[r][j]
                T[r] = ov + sp * sbs[r]
                T2[r] = ov + sp * (sbs[r] + size)
            best = T2.argmin(axis=0)
            ar = np.arange(len(entries))
            T[best, ar] = T2[best, ar]
            tl2 = ctx.page_ovhd_local[j] + ctx.page_spb_local[j] * (
                ctx.html_sizes[j] + (lb - size)
            )
            new = np.maximum(tl2, T.max(axis=0)) if len(entries) else tl2
        shed = ctx.comp_freq[entries]
        raw = (cost.alpha1 * shed) * (new - old)
        out = np.full(len(entries), np.inf)
        pos = shed > 0
        out[pos] = raw[pos] / shed[pos]
        _bump(counters, len(entries))
        return out

    def opt_scores(entries: np.ndarray) -> np.ndarray:
        raw = cost.bulk_optional_entry_delta(entries, to_local=False)
        shed = ctx.opt_freq_weight[entries]
        out = np.full(len(entries), np.inf)
        pos = shed > 0
        out[pos] = raw[pos] / shed[pos]
        _bump(counters, len(entries))
        return out

    ec = (alloc.comp_local & (ctx.comp_server == server_id)).nonzero()[0]
    vc = comp_scores(ec)
    eo = (alloc.opt_local & (ctx.opt_server == server_id)).nonzero()[0]
    vo = opt_scores(eo)
    f[ec] = vc
    f[NC + eo] = vo
    alive[ec] = True
    alive[NC + eo] = True
    heap.push_batch(np.concatenate((vc, vo)), np.concatenate((ec, NC + eo)))

    tol = max(_TOL, 1e-9 * max(capacity, html_load, 1.0))
    switches_since_resync = 0
    while True:
        if switches_since_resync >= 4096:
            load = float(local_processing_load(alloc)[server_id])
            switches_since_resync = 0
        if load <= capacity + tol:
            load = float(local_processing_load(alloc)[server_id])
            if load <= capacity + tol:
                break
        popped = heap.pop_round(f, alive, _TOL)
        if popped is None:
            load = float(local_processing_load(alloc)[server_id])
            if load <= capacity + tol:
                break
            raise InfeasibleError(
                f"server {server_id}: processing constraint unrestorable "
                f"(load {load:.2f} req/s > capacity {capacity:.2f} req/s "
                "with no local downloads left)"
            )
        amortised, key = popped
        if key < NC:
            e = key
            j = int(m.comp_pages[e])
            k = int(m.comp_objects[e])
            shed = float(ctx.comp_freq[e])
            size = float(m.sizes[k])
            alloc.set_comp_local(e, False)
            if n_rem == 1:
                LB[j] -= size
                RB[j] += size
            else:
                best = 0
                best_t = None
                for r in range(n_rem):
                    t = ctx.page_ovhd_streams[r][j] + ctx.page_spb_streams[
                        r
                    ][j] * (RBs[r][j] + size)
                    if best_t is None or t < best_t:
                        best, best_t = r, t
                comp_stream[e] = best + 1
                LB[j] -= size
                RBs[best][j] += size
            alive[e] = False
            # every other local candidate of this page is now stale; the
            # scalar loop pushes each sibling with a fresh score (one
            # ``heap.push`` per sibling, ascending entry order) — one
            # batched push replicates scores and counter order exactly
            sl = m.comp_slice(j)
            sib = sl.start + alloc.comp_local[sl.start : sl.stop].nonzero()[0]
            if len(sib):
                vs = comp_scores(sib)
                f[sib] = vs
                heap.push_batch(vs, sib)
        else:
            e = key - NC
            k = int(m.opt_objects[e])
            shed = float(ctx.opt_freq_weight[e])
            alloc.set_opt_local(e, False)
            alive[key] = False
        stats.switches += 1
        stats.load_shed += shed
        stats.objective_delta += amortised * shed
        load -= shed
        switches_since_resync += 1
        if alloc.mark_count(server_id, k) == 0 and k in alloc.replicas[server_id]:
            alloc.replicas[server_id].discard(k)
            stats.deallocations += 1
    assert load <= capacity + tol, (
        f"server {server_id}: Eq. 8 violated on exit "
        f"({load:.6f} > {capacity:.6f} + tol)"
    )
    return stats


# ----------------------------------------------------------------------
# OFF_LOADING server-side absorption
# ----------------------------------------------------------------------
def absorb_extra_workload_batched(
    alloc: Allocation,
    cost: CostModel,
    server_id: int,
    target: float,
    allow_new_replicas: bool = True,
    allow_swap: bool = True,
    counters: dict | None = None,
) -> float:
    """Batched twin of ``offload.absorb_extra_workload``."""
    from repro.core.offload import _try_make_room

    if alloc.ctx.n_streams > 2:
        raise NotImplementedError(
            "OFF_LOADING absorption supports the k=2 topology only; "
            "k-stream off-loading is a planned follow-up (k>2 scenarios "
            "model the repository tier as uncapacitated)"
        )
    if target <= _TOL:
        return 0.0
    m = alloc.model
    cap = float(m.server_capacity[server_id])
    load = float(local_processing_load(alloc)[server_id])
    cpu_slack = np.inf if np.isinf(cap) else cap - load
    space = float(m.server_storage[server_id] - storage_used(alloc)[server_id])

    ctx = alloc.ctx
    LB = cost.local_mo_bytes(alloc)
    RB = cost.remote_mo_bytes(alloc)
    NC = len(m.comp_objects)
    n_keys = NC + len(m.opt_objects)
    f = np.zeros(n_keys)
    alive = np.zeros(n_keys, dtype=bool)
    dirty = np.zeros(n_keys, dtype=bool)
    heap = VectorLazyHeap()

    def comp_scores(entries: np.ndarray) -> np.ndarray:
        j = ctx.comp_pages[entries]
        size = ctx.comp_sizes[entries]
        lb = LB[j]
        rb = RB[j]
        old = cost.bulk_page_time_from_bytes(j, lb, rb)
        new = cost.bulk_page_time_from_bytes(j, lb + size, rb - size)
        w = ctx.comp_freq[entries]
        raw = (cost.alpha1 * w) * (new - old)
        out = np.full(len(entries), np.inf)
        pos = w > 0
        out[pos] = raw[pos] / w[pos]
        _bump(counters, len(entries))
        return out

    def opt_scores(entries: np.ndarray) -> np.ndarray:
        raw = cost.bulk_optional_entry_delta(entries, to_local=True)
        w = ctx.opt_freq_weight[entries]
        out = np.full(len(entries), np.inf)
        pos = w > 0
        out[pos] = raw[pos] / w[pos]
        _bump(counters, len(entries))
        return out

    ec = ((~alloc.comp_local) & (ctx.comp_server == server_id)).nonzero()[0]
    vc = comp_scores(ec)
    eo = ((~alloc.opt_local) & (ctx.opt_server == server_id)).nonzero()[0]
    vo = opt_scores(eo)
    f[ec] = vc
    f[NC + eo] = vo
    alive[ec] = True
    alive[NC + eo] = True
    heap.push_batch(np.concatenate((vc, vo)), np.concatenate((ec, NC + eo)))

    # opt move-local deltas don't depend on the byte totals, so only
    # comp keys ever get dirty; the scan rescore sees compulsory entries
    rescore = comp_scores

    def mark_page_dirty(j: int) -> None:
        sl = m.comp_slice(j)
        dirty[sl.start : sl.stop] = True

    absorbed = 0.0
    while len(heap) and absorbed < target - _TOL and cpu_slack > _TOL:
        popped = heap.pop_round(f, alive, _TOL, dirty, rescore)
        if popped is None:
            break
        _, key = popped
        if key < NC:
            e = key
            w = float(ctx.comp_freq[e])
        else:
            e = key - NC
            w = float(ctx.opt_freq_weight[e])
        if w <= 0 or w > cpu_slack + _TOL:
            continue  # consumed, but duplicates may still be accepted later
        k = int(m.comp_objects[e] if key < NC else m.opt_objects[e])
        stored = k in alloc.replicas[server_id]
        if not stored:
            size = float(m.sizes[k])
            if not allow_new_replicas:
                continue
            if size > space + _TOL:
                remaining = target - absorbed
                ok, freed_sizes, flip_c, flip_o, flip_pages = _try_make_room(
                    alloc,
                    server_id,
                    size - space,
                    min(w, remaining),
                    LB,
                    RB,
                    allow_swap,
                )
                if not ok:
                    continue  # the scalar path defers, never to revisit
                for sz in freed_sizes:
                    space += sz
                # un-marked entries become poppable again through any
                # duplicate heap entries, exactly like the scalar
                # ``is_local`` check would let them through
                alive[flip_c] = True
                alive[NC + np.asarray(flip_o, dtype=np.intp)] = True
                for jj in flip_pages:
                    mark_page_dirty(jj)
            space -= size
        if key < NC:
            j = int(m.comp_pages[e])
            size_k = float(m.sizes[k])
            alloc.set_comp_local(e, True)
            LB[j] += size_k
            RB[j] -= size_k
            alive[e] = False
            mark_page_dirty(j)  # sibling candidates of this page are stale
        else:
            alloc.set_opt_local(e, True)
            alive[key] = False
        absorbed += w
        cpu_slack -= w
    return absorbed

"""The constraint system of Section 3 (Eq. 8, 9, 10), vectorised.

* **Eq. 8** — local processing: each page view costs its server one HTML
  request, one request per locally-downloaded compulsory MO, and the
  expected number of locally-downloaded optional MOs:

  .. math::

     \\sum_j A_{ij} f(W_j)\\Big(1 + \\sum_k X_{jk} +
     f(W_j, M) \\sum_k U'_{jk} X'_{jk}\\Big) \\le C(S_i)

* **Eq. 9** — repository processing: every compulsory MO *not* marked
  local plus every optional MO expected to be fetched remotely:

  .. math::

     \\sum_j f(W_j)\\Big(\\sum_k U_{jk}(1 - X_{jk}) +
     \\sum_k U'_{jk}(1 - X'_{jk})\\Big) \\le C(R)

* **Eq. 10** — storage: hosted HTML plus the *set union* of MOs stored at
  the server:

  .. math::

     \\sum_j A_{ij} Size(H_j) + \\sum_k \\{Size(M_k) \\mid \\exists W_j:
     A_{ij} = 1 \\wedge X'_{jk} = 1\\} \\le Size(S_i)

  We use the replica set (which may strictly contain the marked set, see
  :mod:`repro.core.allocation`) — a stored-but-unmarked object still
  occupies disk.

Note: the paper's Eq. 9 weighs optional remote requests by ``U'_jk``
(expected requests per page view); for symmetry we also weight by the
page's ``f(W_j, M)`` scale, matching Eq. 8's optional term.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.allocation import Allocation
from repro.core.context import EvalContext
from repro.core.types import SystemModel

__all__ = [
    "local_processing_load",
    "repository_load",
    "remote_stream_loads",
    "storage_used",
    "ConstraintReport",
    "evaluate_constraints",
    "html_request_load",
]


def html_request_load(model: SystemModel) -> np.ndarray:
    """Per-server HTML-request load: :math:`\\sum_{j on i} f(W_j)`.

    This is the irreducible part of Eq. 8's LHS — serving pages at all
    costs one request per view regardless of replication decisions.
    The scatter-add is computed once per model (cached in the shared
    :class:`~repro.core.context.EvalContext`); callers get a copy they
    may accumulate into.
    """
    return EvalContext.for_model(model).html_request_load.copy()


def local_processing_load(alloc: Allocation) -> np.ndarray:
    """Eq. 8 LHS per server (HTTP requests/second)."""
    ctx = alloc.ctx
    # one HTML request per page view
    load = html_request_load(alloc.model)
    # one request per locally downloaded compulsory MO per view
    sel = alloc.comp_local
    np.add.at(load, ctx.comp_server[sel], ctx.comp_freq[sel])
    # expected locally downloaded optional MOs per view
    selo = alloc.opt_local
    np.add.at(load, ctx.opt_server[selo], ctx.opt_freq_weight[selo])
    return load


def repository_load(alloc: Allocation) -> float:
    """Eq. 9 LHS (HTTP requests/second hitting the repository).

    The repository is stream 1 of the k-stream topology.  At k>2 only
    remote entries *assigned to stream 1* (and optional entries whose
    cheapest stream is the repository) load it; the k=2 masks are
    all-true over the remote entries, so the degenerate sums are the
    pre-stream expressions verbatim.
    """
    ctx = alloc.ctx
    if ctx.n_streams == 2:
        comp = float(ctx.comp_freq[~alloc.comp_local].sum())
        opt = float(ctx.opt_freq_weight[~alloc.opt_local].sum())
    else:
        sel = ~alloc.comp_local & (alloc.comp_stream == 1)
        comp = float(ctx.comp_freq[sel].sum())
        selo = ~alloc.opt_local & (ctx.opt_best_stream == 1)
        opt = float(ctx.opt_freq_weight[selo].sum())
    return comp + opt


def remote_stream_loads(alloc: Allocation) -> np.ndarray:
    """Per-remote-stream request loads (length ``n_streams - 1``).

    Element 0 equals :func:`repository_load`; elements ``r-1 >= 1`` are
    the Eq. 9 analogs for the extra replica-site streams — reporting
    aid for the replica-mesh scenarios.
    """
    ctx = alloc.ctx
    out = np.zeros(ctx.n_streams - 1)
    rem = ~alloc.comp_local
    remo = ~alloc.opt_local
    for r in range(1, ctx.n_streams):
        if ctx.n_streams == 2:
            sel, selo = rem, remo
        else:
            sel = rem & (alloc.comp_stream == r)
            selo = remo & (ctx.opt_best_stream == r)
        out[r - 1] = float(ctx.comp_freq[sel].sum()) + float(
            ctx.opt_freq_weight[selo].sum()
        )
    return out


def repository_load_by_server(alloc: Allocation) -> np.ndarray:
    """Eq. 9 LHS decomposed by originating local server.

    ``P(S_i, R)`` of Section 4.2 — the repository workload that server
    ``S_i``'s current assignment imposes.  Sums to
    :func:`repository_load`.
    """
    ctx = alloc.ctx
    out = np.zeros(alloc.model.n_servers)
    sel = ~alloc.comp_local
    selo = ~alloc.opt_local
    if ctx.n_streams > 2:
        sel = sel & (alloc.comp_stream == 1)
        selo = selo & (ctx.opt_best_stream == 1)
    np.add.at(out, ctx.comp_server[sel], ctx.comp_freq[sel])
    np.add.at(out, ctx.opt_server[selo], ctx.opt_freq_weight[selo])
    return out


def storage_used(alloc: Allocation) -> np.ndarray:
    """Eq. 10 LHS per server (bytes): HTML + stored-replica union."""
    return alloc.ctx.html_bytes_by_server + alloc.stored_bytes_all()


@dataclass(frozen=True)
class ConstraintReport:
    """Snapshot of all three constraint families for one allocation.

    ``slack`` entries are ``capacity - load``; negative slack means the
    constraint is violated by that amount.
    """

    local_load: np.ndarray
    local_capacity: np.ndarray
    repo_load: float
    repo_capacity: float
    storage_load: np.ndarray
    storage_capacity: np.ndarray

    @property
    def local_slack(self) -> np.ndarray:
        """Per-server Eq. 8 slack (requests/second)."""
        return self.local_capacity - self.local_load

    @property
    def repo_slack(self) -> float:
        """Eq. 9 slack (requests/second)."""
        return self.repo_capacity - self.repo_load

    @property
    def storage_slack(self) -> np.ndarray:
        """Per-server Eq. 10 slack (bytes)."""
        return self.storage_capacity - self.storage_load

    @property
    def local_ok(self) -> bool:
        """Whether every server satisfies Eq. 8."""
        return bool(np.all(self.local_slack >= -1e-9 * np.maximum(self.local_capacity, 1.0)))

    @property
    def repo_ok(self) -> bool:
        """Whether Eq. 9 holds."""
        if np.isinf(self.repo_capacity):
            return True
        return self.repo_slack >= -1e-9 * max(self.repo_capacity, 1.0)

    @property
    def storage_ok(self) -> bool:
        """Whether every server satisfies Eq. 10."""
        return bool(
            np.all(
                self.storage_slack
                >= -1e-9 * np.maximum(self.storage_capacity, 1.0)
            )
        )

    @property
    def ok(self) -> bool:
        """Whether the allocation is feasible under all constraints."""
        return self.local_ok and self.repo_ok and self.storage_ok

    def violated_servers_storage(self) -> list[int]:
        """Server ids violating Eq. 10."""
        tol = 1e-9 * np.maximum(self.storage_capacity, 1.0)
        return np.flatnonzero(self.storage_slack < -tol).tolist()

    def violated_servers_processing(self) -> list[int]:
        """Server ids violating Eq. 8."""
        tol = 1e-9 * np.maximum(self.local_capacity, 1.0)
        return np.flatnonzero(self.local_slack < -tol).tolist()

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        parts = [
            f"storage: {'OK' if self.storage_ok else 'VIOLATED ' + str(self.violated_servers_storage())}",
            f"local processing: {'OK' if self.local_ok else 'VIOLATED ' + str(self.violated_servers_processing())}",
            f"repository processing: {'OK' if self.repo_ok else f'VIOLATED by {-self.repo_slack:.2f} req/s'}",
        ]
        return "; ".join(parts)


def evaluate_constraints(alloc: Allocation) -> ConstraintReport:
    """Evaluate Eq. 8-10 for ``alloc`` and return a report."""
    m = alloc.model
    return ConstraintReport(
        local_load=local_processing_load(alloc),
        local_capacity=m.server_capacity.copy(),
        repo_load=repository_load(alloc),
        repo_capacity=m.repository.processing_capacity,
        storage_load=storage_used(alloc),
        storage_capacity=m.server_storage.copy(),
    )

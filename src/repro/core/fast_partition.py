"""Batched PARTITION kernel (Section 4.2, all pages at once).

:func:`partition_page` runs the paper's greedy stream balancing one page
at a time; on Table 1-scale workloads the experiment sweeps spend most of
their wall-clock inside that Python loop.  This module re-implements the
greedy as a **pad-and-mask batch kernel** over the flat CSR layout that
:class:`~repro.core.types.SystemModel` already maintains
(``comp_sorted`` / ``comp_indptr``): pages are sorted by descending
compulsory count, padded to a conceptual ``(n_pages, max_k)`` tile, and
each greedy step ``t`` becomes one vectorized compare-and-select over
every page whose ``t``-th object exists.  Because the pages are rank
sorted, the active set at step ``t`` is a prefix — the kernel never
touches exhausted pages, so total work is ``O(sum_j k_j)`` element ops in
``max_k`` NumPy dispatches instead of ``sum_j k_j`` Python iterations.

Bit-exactness contract
----------------------
The kernel performs *the same IEEE-754 double operations in the same
order* as the scalar greedy for every page:

* ``local = Ovhd(S_i) + Size(H_j)/B(S_i)`` seed, ``remote = Ovhd(R, S_i)``,
* per object ``cand_remote = remote + size/B(R,S_i)`` and
  ``cand_local = local + size/B(S_i)``,
* the tie rule ``cand_remote < cand_local`` — **equal candidates go
  local** (only a strictly shorter repository stream wins an object).

Hence marks and stream times are **bit-identical** to
:func:`~repro.core.partition.partition_page`, which the differential
property suite (``tests/properties/test_property_fast_partition.py``)
asserts with exact ``==`` comparisons.  The scalar implementation stays
in the tree as the reference oracle.

Entry points
------------
* :func:`partition_pages_batched` — marks + stream times for a set of
  pages (the restoration re-partition path batches the pages affected by
  an eviction).
* :func:`partition_all_batched` — full :class:`Allocation` assembly via
  the bulk mark APIs (:meth:`Allocation.set_comp_local_bulk`).
* :func:`comp_allowed_mask` / :func:`optional_marks_batched` — vectorised
  ``allowed`` whitelists and optional-object marking.
"""

from __future__ import annotations

from typing import Collection

import numpy as np

from repro.core.allocation import Allocation
from repro.core.context import EvalContext
from repro.core.types import SystemModel
from repro.obs.registry import get_registry

__all__ = [
    "partition_pages_batched",
    "partition_pages_multipath",
    "partition_all_batched",
    "comp_allowed_mask",
    "optional_marks_batched",
]


def comp_allowed_mask(
    model: SystemModel,
    allowed_per_server: dict[int, Collection[int]] | None,
) -> np.ndarray | None:
    """Per-compulsory-entry ``allowed`` mask from per-server whitelists.

    ``None`` whitelists mean "unrestricted"; a missing server key means
    "nothing allowed" for that server's pages (matching
    :func:`~repro.core.partition.partition_all`'s ``.get(server, ())``).
    """
    if allowed_per_server is None:
        return None
    ne = len(model.comp_objects)
    mask = np.zeros(ne, dtype=bool)
    entry_server = EvalContext.for_model(model).comp_server
    for i in range(model.n_servers):
        allowed = allowed_per_server.get(i, ())
        if not allowed:
            continue
        rows = entry_server == i
        allowed_arr = np.fromiter(allowed, dtype=np.intp, count=len(allowed))
        mask[rows] = np.isin(model.comp_objects[rows], allowed_arr)
    return mask


def _entry_tile_column(
    model: SystemModel,
    pages: np.ndarray,
    counts: np.ndarray,
    t: int,
    order: str,
) -> np.ndarray:
    """Flat entry index of each page's ``t``-th object in ``order``.

    Only called with pages whose count exceeds ``t`` (the rank-sorted
    active prefix), so no padding is needed.
    """
    starts = model.comp_indptr[pages]
    if order == "decreasing":
        return model.comp_sorted[starts + t]
    if order == "increasing":
        return model.comp_sorted[starts + counts - 1 - t]
    if order == "document":
        return starts + t
    raise ValueError(f"unknown sort order {order!r}")


def partition_pages_batched(
    model: SystemModel,
    page_ids: np.ndarray | Collection[int] | None = None,
    allowed_mask: np.ndarray | None = None,
    order: str = "decreasing",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run PARTITION for many pages in one vectorized pass.

    Parameters
    ----------
    model:
        The system universe.
    page_ids:
        Pages to partition (default: all pages).
    allowed_mask:
        Optional boolean array over the model's **flat compulsory
        entries**: ``False`` entries are forced onto the repository
        stream (build it with :func:`comp_allowed_mask`, or slice-assign
        for a single server's replica set).  ``None`` = unrestricted.
    order:
        Same iteration orders as :func:`~repro.core.partition.partition_page`.

    Returns
    -------
    (marks, local_times, remote_times):
        ``marks`` is a flat boolean array over **all** of the model's
        compulsory entries (entries of unselected pages stay ``False``);
        the time arrays are aligned with ``page_ids``.
    """
    if page_ids is None:
        pages = np.arange(model.n_pages, dtype=np.intp)
    else:
        pages = np.asarray(page_ids, dtype=np.intp)
        if pages.ndim != 1:
            raise ValueError("page_ids must be one-dimensional")
    if order not in ("decreasing", "increasing", "document"):
        raise ValueError(f"unknown sort order {order!r}")

    reg = get_registry()
    if reg.enabled:
        reg.count("partition.batched_calls")
        reg.count("partition.batched_pages", len(pages))

    ne = len(model.comp_objects)
    marks = np.zeros(ne, dtype=bool)

    ctx = EvalContext.for_model(model)
    spb_local = ctx.page_spb_local[pages]
    spb_repo = ctx.page_spb_repo[pages]
    local = ctx.page_ovhd_local[pages] + spb_local * ctx.html_sizes[pages]
    remote = ctx.page_ovhd_repo[pages].copy()

    counts = model.comp_indptr[pages + 1] - model.comp_indptr[pages]
    if len(pages) == 0 or counts.max(initial=0) == 0:
        return marks, local, remote

    # Rank pages by descending compulsory count so the pages still
    # holding a t-th object always form a prefix of the batch; undo the
    # permutation on return.
    rank = np.argsort(-counts, kind="stable")
    pages_r = pages[rank]
    counts_r = counts[rank]
    local_r = local[rank]
    remote_r = remote[rank]
    spb_local_r = spb_local[rank]
    spb_repo_r = spb_repo[rank]

    entry_sizes = model.comp_entry_sizes
    max_k = int(counts_r[0])
    # Number of active pages at each step: counts_r is descending, so
    # pages with counts_r > t occupy [0, active_at[t]).
    active_at = np.searchsorted(-counts_r, -np.arange(max_k), side="left")

    for t in range(max_k):
        a = int(active_at[t])
        e_t = _entry_tile_column(model, pages_r[:a], counts_r[:a], t, order)
        size = entry_sizes[e_t]
        cand_remote = remote_r[:a] + spb_repo_r[:a] * size
        cand_local = local_r[:a] + spb_local_r[:a] * size
        # Paper tie rule: the repository wins an object only when its
        # stream ends up STRICTLY shorter; equal candidates go local.
        go_local = ~(cand_remote < cand_local)
        if allowed_mask is not None:
            go_local &= allowed_mask[e_t]
        remote_r[:a] = np.where(go_local, remote_r[:a], cand_remote)
        local_r[:a] = np.where(go_local, cand_local, local_r[:a])
        marks[e_t[go_local]] = True

    inv = np.empty_like(rank)
    inv[rank] = np.arange(len(rank))
    return marks, local_r[inv], remote_r[inv]


def partition_pages_multipath(
    model: SystemModel,
    page_ids: np.ndarray | Collection[int] | None = None,
    allowed_mask: np.ndarray | None = None,
    order: str = "decreasing",
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """k-way batched PARTITION: argmin over all streams per greedy step.

    The batched counterpart of
    :func:`~repro.core.partition.partition_page_streams`.  Each step
    stacks the k candidate times as a ``(k, active)`` matrix — row 0 is
    the local stream — and ``np.argmin`` picks the winner, so ties fall
    to the lowest stream index exactly like the scalar reference (and,
    at k=2, exactly like :func:`partition_pages_batched`'s
    ``~(cand_remote < cand_local)`` rule).  Disallowed objects get row
    0 masked to ``+inf``, leaving the argmin over the remote streams.

    Returns
    -------
    (marks, streams, local_times, stream_times):
        ``marks``/``streams`` are flat over all compulsory entries
        (``streams`` is ``int8``, meaningful where the mark is
        ``False``); ``local_times`` aligns with ``page_ids`` and
        ``stream_times`` is ``(n_streams - 1, len(page_ids))``.
    """
    if page_ids is None:
        pages = np.arange(model.n_pages, dtype=np.intp)
    else:
        pages = np.asarray(page_ids, dtype=np.intp)
        if pages.ndim != 1:
            raise ValueError("page_ids must be one-dimensional")
    if order not in ("decreasing", "increasing", "document"):
        raise ValueError(f"unknown sort order {order!r}")

    reg = get_registry()
    if reg.enabled:
        reg.count("partition.multipath_calls")
        reg.count("partition.multipath_pages", len(pages))

    ne = len(model.comp_objects)
    marks = np.zeros(ne, dtype=bool)
    streams = np.ones(ne, dtype=np.int8)

    ctx = EvalContext.for_model(model)
    n_rem = ctx.n_streams - 1
    spb_local = ctx.page_spb_local[pages]
    local = ctx.page_ovhd_local[pages] + spb_local * ctx.html_sizes[pages]
    spb_streams = np.stack([col[pages] for col in ctx.page_spb_streams])
    remote = np.stack([col[pages] for col in ctx.page_ovhd_streams])

    counts = model.comp_indptr[pages + 1] - model.comp_indptr[pages]
    if len(pages) == 0 or counts.max(initial=0) == 0:
        return marks, streams, local, remote

    rank = np.argsort(-counts, kind="stable")
    pages_r = pages[rank]
    counts_r = counts[rank]
    local_r = local[rank]
    remote_r = remote[:, rank]
    spb_local_r = spb_local[rank]
    spb_streams_r = spb_streams[:, rank]

    entry_sizes = model.comp_entry_sizes
    max_k = int(counts_r[0])
    active_at = np.searchsorted(-counts_r, -np.arange(max_k), side="left")

    for t in range(max_k):
        a = int(active_at[t])
        e_t = _entry_tile_column(model, pages_r[:a], counts_r[:a], t, order)
        size = entry_sizes[e_t]
        cand_local = local_r[:a] + spb_local_r[:a] * size
        cand_streams = remote_r[:, :a] + spb_streams_r[:, :a] * size
        top = cand_local
        if allowed_mask is not None:
            top = np.where(allowed_mask[e_t], cand_local, np.inf)
        choice = np.argmin(
            np.concatenate([top[None, :], cand_streams], axis=0), axis=0
        )
        go_local = choice == 0
        local_r[:a] = np.where(go_local, cand_local, local_r[:a])
        for r in range(n_rem):
            on_r = choice == r + 1
            remote_r[r, :a] = np.where(on_r, cand_streams[r], remote_r[r, :a])
        marks[e_t[go_local]] = True
        streams[e_t[~go_local]] = choice[~go_local].astype(np.int8)

    inv = np.empty_like(rank)
    inv[rank] = np.arange(len(rank))
    return marks, streams, local_r[inv], remote_r[:, inv]


def optional_marks_batched(
    model: SystemModel,
    policy: str = "all",
    allowed_per_server: dict[int, Collection[int]] | None = None,
) -> np.ndarray:
    """Flat optional-entry marks for every page under ``policy``.

    Vectorized equivalent of the scalar ``_optional_marks`` loop: the
    ``"beneficial"`` predicate ``Ovhd(S_i) + size/B(S_i) <= Ovhd(R, S_i)
    + size/B(R, S_i)`` is evaluated with the identical arithmetic.
    """
    ne = len(model.opt_objects)
    if ne == 0 or policy == "none":
        return np.zeros(ne, dtype=bool)
    ctx = EvalContext.for_model(model)
    srv = ctx.opt_server
    if policy == "all":
        marks = np.ones(ne, dtype=bool)
    elif policy == "beneficial":
        # the per-entry single-download times are exactly the "beneficial"
        # predicate's two sides, precomputed once in the context
        # (opt_time_remote IS opt_time_repo at k=2, the cheapest stream
        # otherwise — matching the scalar _optional_marks)
        marks = ctx.opt_time_local <= ctx.opt_time_remote
    else:
        raise ValueError(f"unknown optional policy {policy!r}")
    if allowed_per_server is not None:
        allowed = np.zeros(ne, dtype=bool)
        for i in range(model.n_servers):
            wl = allowed_per_server.get(i, ())
            if not wl:
                continue
            rows = srv == i
            wl_arr = np.fromiter(wl, dtype=np.intp, count=len(wl))
            allowed[rows] = np.isin(model.opt_objects[rows], wl_arr)
        marks &= allowed
    return marks


def partition_all_batched(
    model: SystemModel,
    optional_policy: str = "all",
    allowed_per_server: dict[int, Collection[int]] | None = None,
    order: str = "decreasing",
) -> Allocation:
    """Batched :func:`~repro.core.partition.partition_all`.

    Produces an :class:`Allocation` equal (marks, replicas and all) to
    the scalar assembly, but computes every page's greedy in the batch
    kernel and installs the marks through the bulk APIs.
    """
    mask = comp_allowed_mask(model, allowed_per_server)
    if getattr(model, "n_streams", 2) > 2:
        comp_marks, streams, _, _ = partition_pages_multipath(
            model, page_ids=None, allowed_mask=mask, order=order
        )
    else:
        streams = None
        comp_marks, _, _ = partition_pages_batched(
            model, page_ids=None, allowed_mask=mask, order=order
        )
    opt_marks = optional_marks_batched(model, optional_policy, allowed_per_server)
    alloc = Allocation(model)
    alloc.set_comp_local_bulk(comp_marks.nonzero()[0], True)
    alloc.set_opt_local_bulk(opt_marks.nonzero()[0], True)
    if streams is not None:
        alloc.comp_stream[:] = streams
    return alloc

"""Sharded process-parallel policy kernel (``kernel="sharded"``).

The paper's pipeline pins every page to exactly one server, which makes
the hot phases *per-server decomposable*:

* **PARTITION** (Section 4.2) is per page — a page's greedy depends only
  on its own server's link parameters and its own objects;
* **storage restoration** (Eq. 10) and **processing restoration**
  (Eq. 8) are per server — every candidate score, eviction,
  re-partition and switch reads and writes only the target server's
  pages, entries and replica set.

Only **OFF_LOADING_REPOSITORY** (Eq. 9) is globally coupled: the
repository load sums over *all* servers, and each negotiation round
splits ``NewReq`` proportionally over the global ``L1``/``L2`` slack
frontier.  The sharded kernel therefore:

1. splits the servers into ``shards`` groups (deterministic balanced
   LPT over per-server entry counts, :func:`plan_shards`);
2. runs PARTITION + both restorations for each group in a worker
   process (:func:`_run_shard`), each worker deriving its own
   :class:`~repro.core.context.EvalContext` columns, CSR groups and
   page streams for exactly its servers' pages;
3. reconciles in the parent: scatters the per-shard mark/replica
   frontiers back into one global :class:`~repro.core.allocation.Allocation`,
   recomputes the objectives and the constraint report over the merged
   state, and replays the globally-coupled OFF_LOADING rounds on it —
   bit-identically to the unsharded run (DESIGN.md Appendix F).

Bit-identity is the contract, not an aspiration: the merged allocation,
objective, stats and phase list equal the ``"batched"`` kernel's exactly
(property-tested in ``tests/properties/test_property_sharded_policy.py``
and pinned by the golden regressions).  Two details make that hold:

* objectives are evaluated in the **parent** over merged marks — a
  per-shard partial ``np.dot`` would change float summation order;
* restoration stats are merged in **global server order**, reproducing
  the reference loop's accumulation sequence.

Worker processes come from an *injected* pool: anything with a
``submit(fn, *args) -> future`` method (the layering lint enforces that
this module never imports ``repro.experiments`` — pass
``repro.experiments.executor.persistent_pool(n)`` in from above, or let
:func:`default_pool` build a private stdlib pool).  Models ship to
workers pre-pickled once and are cached per worker process by content
digest, so repeated runs over structurally identical models pay the
unpickle only once.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import pickle
import time
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Protocol, Sequence

import numpy as np

from repro import obs
from repro.core.allocation import Allocation
from repro.core.constraints import evaluate_constraints
from repro.core.context import EvalContext
from repro.core.cost_model import CostModel
from repro.core.fast_partition import optional_marks_batched, partition_pages_batched
from repro.core.offload import OffloadConfig, OffloadOutcome, offload_repository
from repro.core.restoration import (
    ProcessingRestorationStats,
    StorageRestorationStats,
    restore_processing_capacity,
    restore_storage_capacity,
)
from repro.core.types import SystemModel
from repro.obs.manifest import WORKER_ENV_VAR
from repro.obs.registry import MetricsRegistry, use_registry
from repro.util.validation import env_positive_int

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.policy import PolicyResult

__all__ = [
    "ShardPool",
    "InlineShardPool",
    "default_pool",
    "shutdown_shard_pool",
    "resolve_shards",
    "plan_shards",
    "run_sharded_policy",
]


# ----------------------------------------------------------------------
# pool injection
# ----------------------------------------------------------------------
class ShardPool(Protocol):
    """What the sharded driver needs from a worker pool.

    :class:`concurrent.futures.ProcessPoolExecutor` satisfies it, as
    does the persistent pool in ``repro.experiments.executor`` — which
    must be *passed in* by an upper layer, never imported from here.
    """

    def submit(self, fn, /, *args, **kwargs) -> Any:  # pragma: no cover
        """Schedule ``fn(*args, **kwargs)``; return a future with ``result()``."""
        ...


class InlineShardPool:
    """Serial in-process pool: ``submit`` runs the task immediately.

    The deterministic no-subprocess harness for the differential tests
    (Hypothesis drives hundreds of examples; forking per example would
    dominate) and a zero-dependency fallback anywhere process pools are
    unavailable.  Because it runs in-process, the driver skips the
    pickle round-trip entirely (``inline = True``).
    """

    inline = True

    def submit(self, fn, /, *args, **kwargs) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - mirror executor semantics
            future.set_exception(exc)
        return future


_POOL: ProcessPoolExecutor | None = None
_POOL_SIZE = 0


def _shard_worker_init() -> None:
    """Tag the process as a worker so run manifests get per-worker paths."""
    os.environ[WORKER_ENV_VAR] = str(os.getpid())


def default_pool(workers: int) -> ProcessPoolExecutor:
    """A persistent private pool of at least ``workers`` processes.

    Used when no pool is injected.  Persistent for the same reason the
    experiment executor's pool is: workers cache unpickled models by
    content digest, so back-to-back runs (benchmark repeats, golden
    tests) skip the per-run model transfer cost.
    """
    global _POOL, _POOL_SIZE
    if _POOL is None or _POOL_SIZE < workers:
        if _POOL is not None:
            _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = ProcessPoolExecutor(
            max_workers=workers, initializer=_shard_worker_init
        )
        _POOL_SIZE = workers
    return _POOL


def shutdown_shard_pool() -> None:
    """Tear down the private default pool (benchmark cold starts)."""
    global _POOL, _POOL_SIZE
    if _POOL is not None:
        _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = None
        _POOL_SIZE = 0


atexit.register(shutdown_shard_pool)


# ----------------------------------------------------------------------
# shard-count resolution and planning
# ----------------------------------------------------------------------
def resolve_shards(
    shards: int | None = None, n_servers: int | None = None
) -> int | None:
    """Resolve the shard count: explicit value, else ``REPRO_SHARDS``, else auto.

    Mirrors ``repro.experiments.executor.resolve_jobs``: explicit
    non-positive / non-integer values and malformed environment values
    raise :class:`ValueError` naming the offending source.  With
    ``n_servers`` known, auto resolves to
    ``min(n_servers, cpu_count)`` and any request exceeding the server
    count is rejected — a shard owns whole servers, so there is nothing
    for an extra shard to do.  Without ``n_servers`` (e.g. CLI argument
    validation before a model exists) an unset value stays ``None``.
    """
    if shards is None:
        shards = env_positive_int("REPRO_SHARDS", default=None)
    elif isinstance(shards, bool) or not isinstance(shards, int):
        raise ValueError(f"shards must be a positive integer, got {shards!r}")
    elif shards <= 0:
        raise ValueError(f"shards must be a positive integer, got {shards}")
    if shards is None:
        if n_servers is None:
            return None
        shards = max(1, min(n_servers, os.cpu_count() or 1))
    if n_servers is not None and shards > n_servers:
        raise ValueError(
            f"shards must not exceed the model's server count "
            f"({n_servers}), got {shards}"
        )
    return shards


def _server_weights(model: SystemModel) -> np.ndarray:
    """Per-server work proxy: compulsory + optional entry counts.

    The restoration loops' cost scales with the number of matrix entries
    a server owns, so balancing entry counts balances shard wall-clock.
    Computed from the flat model arrays — no context build needed.
    """
    comp_per_page = np.diff(model.comp_indptr)
    opt_per_page = np.diff(model.opt_indptr)
    return np.bincount(
        model.page_server,
        weights=(comp_per_page + opt_per_page).astype(float),
        minlength=model.n_servers,
    )


def plan_shards(model: SystemModel, shards: int) -> tuple[tuple[int, ...], ...]:
    """Deterministically split the servers into ``shards`` balanced groups.

    Longest-processing-time greedy over :func:`_server_weights`: servers
    in decreasing weight order (ties by ascending id) each go to the
    currently lightest group (load ties broken by fewest members, then
    lowest group index — so zero-weight servers spread out instead of
    piling into group 0).  With ``shards <= n_servers`` every group
    therefore receives at least one server; a group holding only
    zero-weight servers (servers with no pages) is a valid *empty
    shard* — its worker is a structured no-op.

    Returns the groups with each group's server ids ascending.  Group
    composition is a pure function of the model, so two runs over equal
    models shard identically.
    """
    n_servers = model.n_servers
    if shards < 1 or shards > n_servers:
        raise ValueError(
            f"shards must be between 1 and the model's server count "
            f"({n_servers}), got {shards}"
        )
    weights = _server_weights(model)
    order = sorted(range(n_servers), key=lambda i: (-weights[i], i))
    loads = [0.0] * shards
    groups: list[list[int]] = [[] for _ in range(shards)]
    for i in order:
        g = min(range(shards), key=lambda s: (loads[s], len(groups[s]), s))
        groups[g].append(i)
        loads[g] += float(weights[i])
    return tuple(tuple(sorted(g)) for g in groups)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ShardOptions:
    """Per-run knobs shipped to every shard worker."""

    alpha1: float
    alpha2: float
    optional_policy: str
    record: bool


@dataclass
class _ShardResult:
    """One shard's candidate frontier, shipped back for reconciliation.

    The mark arrays are full-length flat booleans (entries outside the
    shard stay ``False``) so the parent merge is a plain bitwise OR —
    at Table 1 scale that is ~150 KB per shard, far below any index
    bookkeeping scheme's complexity budget.
    """

    server_ids: tuple[int, ...]
    n_pages: int
    n_entries: int
    comp_partition: np.ndarray
    opt_partition: np.ndarray
    comp_final: np.ndarray
    opt_final: np.ndarray
    replicas: list[tuple[int, list[int]]]
    storage_ran: bool
    processing_ran: bool
    storage_stats: list[tuple[int, StorageRestorationStats]]
    processing_stats: list[tuple[int, ProcessingRestorationStats]]
    phase_seconds: dict[str, float] = field(default_factory=dict)
    seconds: float = 0.0
    snapshot: dict | None = None


#: Worker-side cache of unpickled models, keyed by payload digest.  Two
#: entries cover the common interleavings (e.g. a benchmark alternating
#: between a constrained and an unconstrained clone).
_WORKER_MODELS: "OrderedDict[str, SystemModel]" = OrderedDict()
_WORKER_MODEL_CAP = 2


def _model_from_payload(payload: tuple) -> SystemModel:
    kind = payload[0]
    if kind == "model":
        return payload[1]
    _, digest, blob = payload
    model = _WORKER_MODELS.get(digest)
    if model is None:
        model = pickle.loads(blob)
        _WORKER_MODELS[digest] = model
        while len(_WORKER_MODELS) > _WORKER_MODEL_CAP:
            _WORKER_MODELS.popitem(last=False)
    else:
        _WORKER_MODELS.move_to_end(digest)
    return model


def _shard_pipeline(
    model: SystemModel, server_ids: Sequence[int], opts: _ShardOptions
) -> _ShardResult:
    """PARTITION + per-server restorations for one group of servers.

    Phase gating matches the reference pipeline exactly: the reference
    gates each restoration on the *global* constraint report, but
    restoring a non-violating server is a no-op, so gating on "any of
    *my* servers violated" yields the same allocation — and the parent
    ORs the per-shard flags to reconstruct the global phase list.
    """
    t0 = time.perf_counter()
    ctx = EvalContext.for_model(model)
    cost = CostModel(model, opts.alpha1, opts.alpha2)
    member = np.zeros(model.n_servers, dtype=bool)
    member[list(server_ids)] = True
    pages = np.flatnonzero(member[model.page_server])
    phase_seconds: dict[str, float] = {}

    t = time.perf_counter()
    alloc = Allocation(model)
    if len(pages):
        comp_marks, _, _ = partition_pages_batched(model, page_ids=pages)
        alloc.set_comp_local_bulk(np.flatnonzero(comp_marks), True)
    opt_marks = optional_marks_batched(model, opts.optional_policy)
    opt_marks &= member[ctx.opt_server]
    alloc.set_opt_local_bulk(np.flatnonzero(opt_marks), True)
    phase_seconds["partition"] = time.perf_counter() - t
    comp_partition = alloc.comp_local.copy()
    opt_partition = alloc.opt_local.copy()

    report = evaluate_constraints(alloc)
    storage_stats: list[tuple[int, StorageRestorationStats]] = []
    storage_ran = any(member[i] for i in report.violated_servers_storage())
    if storage_ran:
        t = time.perf_counter()
        for i in server_ids:
            storage_stats.append(
                (i, restore_storage_capacity(alloc, cost, server_id=i))
            )
        phase_seconds["storage-restoration"] = time.perf_counter() - t
        report = evaluate_constraints(alloc)

    processing_stats: list[tuple[int, ProcessingRestorationStats]] = []
    processing_ran = any(member[i] for i in report.violated_servers_processing())
    if processing_ran:
        t = time.perf_counter()
        for i in server_ids:
            processing_stats.append(
                (i, restore_processing_capacity(alloc, cost, server_id=i))
            )
        phase_seconds["processing-restoration"] = time.perf_counter() - t

    return _ShardResult(
        server_ids=tuple(int(i) for i in server_ids),
        n_pages=int(len(pages)),
        n_entries=int(member[ctx.comp_server].sum() + member[ctx.opt_server].sum()),
        comp_partition=comp_partition,
        opt_partition=opt_partition,
        comp_final=alloc.comp_local,
        opt_final=alloc.opt_local,
        replicas=[(int(i), sorted(alloc.replicas[i])) for i in server_ids],
        storage_ran=storage_ran,
        processing_ran=processing_ran,
        storage_stats=storage_stats,
        processing_stats=processing_stats,
        phase_seconds=phase_seconds,
        seconds=time.perf_counter() - t0,
    )


def _run_shard(
    payload: tuple, server_ids: tuple[int, ...], opts: _ShardOptions
) -> _ShardResult:
    """Worker entry point: resolve the model, record into a private
    registry when the parent is collecting, return the shard frontier."""
    model = _model_from_payload(payload)
    registry = MetricsRegistry() if opts.record else None
    with use_registry(registry):
        result = _shard_pipeline(model, server_ids, opts)
    if registry is not None:
        result.snapshot = registry.snapshot()
    return result


# ----------------------------------------------------------------------
# parent side: fan out, reconcile, replay the global phases
# ----------------------------------------------------------------------
def run_sharded_policy(
    model: SystemModel,
    alpha1: float = 2.0,
    alpha2: float = 1.0,
    optional_policy: str = "all",
    offload_config: OffloadConfig | None = None,
    shards: int | None = None,
    pool: ShardPool | None = None,
) -> "PolicyResult":
    """The full policy pipeline, sharded over a worker pool.

    Bit-identical to ``RepositoryReplicationPolicy(kernel="batched")``
    on allocation, objectives, stats, constraint report and phase list
    — see the module docstring for why.

    Parameters
    ----------
    shards:
        Group count; resolved via :func:`resolve_shards` (explicit →
        ``REPRO_SHARDS`` → ``min(n_servers, cpu_count)``).
    pool:
        Injected :class:`ShardPool`; defaults to this module's private
        persistent :func:`default_pool`.  Pass
        :class:`InlineShardPool` to run serially in-process.
    """
    from repro.core.policy import PolicyResult

    reg = obs.get_registry()
    cost = CostModel(model, alpha1, alpha2)
    n_shards = resolve_shards(shards, n_servers=model.n_servers)
    groups = plan_shards(model, n_shards)
    opts = _ShardOptions(
        alpha1=alpha1,
        alpha2=alpha2,
        optional_policy=optional_policy,
        record=reg.enabled,
    )
    if pool is None:
        pool = default_pool(len(groups))
    if getattr(pool, "inline", False):
        payload: tuple = ("model", model)
    else:
        blob = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
        payload = ("blob", hashlib.sha256(blob).hexdigest(), blob)

    spans: dict[str, obs.SpanRecord] = {}
    with reg.span("policy"):
        with reg.span("shard-fanout") as fan:
            spans["shard-fanout"] = fan
            futures = [
                pool.submit(_run_shard, payload, group, opts)
                for group in groups
            ]
            results = [f.result() for f in futures]

        ne_c = len(model.comp_objects)
        ne_o = len(model.opt_objects)
        comp_part = np.zeros(ne_c, dtype=bool)
        opt_part = np.zeros(ne_o, dtype=bool)
        comp_fin = np.zeros(ne_c, dtype=bool)
        opt_fin = np.zeros(ne_o, dtype=bool)
        replicas: list[set[int] | None] = [None] * model.n_servers
        for r in results:
            comp_part |= r.comp_partition
            opt_part |= r.opt_partition
            comp_fin |= r.comp_final
            opt_fin |= r.opt_final
            for i, stored in r.replicas:
                replicas[i] = set(stored)
        assert all(r is not None for r in replicas), "shard plan missed a server"

        unconstrained_d = cost.D(Allocation(model, comp_part, opt_part))
        phases: list[str] = ["partition"]

        # Stats merge in global server order — the reference loop's
        # accumulation sequence, so float partial sums match bitwise.
        storage_stats = StorageRestorationStats()
        if any(r.storage_ran for r in results):
            phases.append("storage-restoration")
            by_server = {i: s for r in results for i, s in r.storage_stats}
            for i in sorted(by_server):
                storage_stats.merge(by_server[i])

        processing_stats = ProcessingRestorationStats()
        if any(r.processing_ran for r in results):
            phases.append("processing-restoration")
            by_server = {i: s for r in results for i, s in r.processing_stats}
            for i in sorted(by_server):
                processing_stats.merge(by_server[i])

        alloc = Allocation(model, comp_fin, opt_fin, replicas=replicas)
        report = evaluate_constraints(alloc)

        # OFF_LOADING negotiates against the *global* Eq. 9 frontier
        # (repository load and L1/L2 slack sum over every server), so it
        # replays in the parent over the merged allocation.
        offload_outcome: OffloadOutcome | None = None
        if not report.repo_ok:
            with reg.span("off-loading") as sp:
                spans["off-loading"] = sp
                offload_outcome = offload_repository(
                    alloc, cost, offload_config or OffloadConfig()
                )
            phases.append("off-loading")
            report = evaluate_constraints(alloc)

        objective = cost.D(alloc)

    phase_seconds: dict[str, float] = {}
    if reg.enabled:
        for idx, r in enumerate(results):
            reg.gauge(f"shard.{idx}.servers", float(len(r.server_ids)))
            reg.gauge(f"shard.{idx}.pages", float(r.n_pages))
            reg.gauge(f"shard.{idx}.entries", float(r.n_entries))
            reg.gauge(f"shard.{idx}.seconds", r.seconds)
            if r.snapshot is not None:
                reg.merge_snapshot(r.snapshot)
        reg.gauge("shard.count", float(len(groups)))
        # Per-phase wall clock: the slowest shard bounds each fanned-out
        # phase; the reconcile-side phases time their own spans.
        for name in ("partition", "storage-restoration", "processing-restoration"):
            worst = max(
                (r.phase_seconds.get(name, 0.0) for r in results), default=0.0
            )
            if name in phases or name == "partition":
                phase_seconds[name] = worst
        phase_seconds["shard-fanout"] = spans["shard-fanout"].seconds
        if "off-loading" in spans:
            phase_seconds["off-loading"] = spans["off-loading"].seconds
        reg.count("policy.runs")
        reg.count("policy.kernel.sharded")
        reg.gauge("policy.objective", objective)
        reg.gauge("policy.unconstrained_objective", unconstrained_d)
        reg.gauge("policy.feasible", float(report.ok))
        reg.gauge("policy.phases_run", float(len(phases)))

    return PolicyResult(
        allocation=alloc,
        objective=objective,
        constraints=report,
        storage_stats=storage_stats,
        processing_stats=processing_stats,
        offload_outcome=offload_outcome,
        unconstrained_objective=unconstrained_d,
        phases_run=phases,
        phase_seconds=phase_seconds,
    )

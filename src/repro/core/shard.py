"""Sharded process-parallel policy kernel (``kernel="sharded"``).

The paper's pipeline pins every page to exactly one server, which makes
the hot phases *per-server decomposable*:

* **PARTITION** (Section 4.2) is per page — a page's greedy depends only
  on its own server's link parameters and its own objects;
* **storage restoration** (Eq. 10) and **processing restoration**
  (Eq. 8) are per server — every candidate score, eviction,
  re-partition and switch reads and writes only the target server's
  pages, entries and replica set;
* even **OFF_LOADING**'s server-side *absorption* (the inner loop of
  Eq. 9's negotiation) only touches the absorbing server — only the
  repository-side round bookkeeping (``NewReq`` shares, ``L3``
  demotion, message counts) is order-sensitive.

The sharded kernel exploits all three:

1. it splits the servers into ``shards`` groups (deterministic balanced
   LPT over per-server entry counts, :func:`plan_shards`);
2. each worker process builds a **shard-local**
   :class:`~repro.core.context.EvalContext` via
   :meth:`~repro.core.context.EvalContext.for_servers` — columns, CSR
   groups and page streams for exactly its servers' pages, so worker
   setup is O(shard) instead of O(model) — and runs PARTITION + both
   restorations on the restricted model (:func:`_run_shard`);
3. the parent reconciles: scatters the per-shard mark/replica frontiers
   (shipped as *global* entry indices) back into one global
   :class:`~repro.core.allocation.Allocation`, recomputes objectives
   and constraints over the merged state, and replays the
   OFF_LOADING rounds with the repository-side bookkeeping in-process
   while each round's per-server absorptions scatter to the pool
   (:class:`_ShardedScatter` → :func:`_absorb_server`).

Bit-identity is the contract, not an aspiration: the merged allocation,
objective, stats and phase list equal the ``"batched"`` kernel's exactly
(property-tested in ``tests/properties/test_property_sharded_policy.py``
and pinned by the golden regressions).  Three details make that hold:

* objectives are evaluated in the **parent** over merged marks — a
  per-shard partial ``np.dot`` would change float summation order;
* restoration stats are merged in **global server order**, reproducing
  the reference loop's accumulation sequence;
* the restricted model preserves *order*: objects keep their global
  ids, pages/entries are renumbered by a strictly increasing map, so
  every score, float partial sum and index tie-break inside a shard
  matches the full-model run restricted to that shard (DESIGN.md
  Appendix H).

Transport: models ship to workers through a
:class:`~repro.core.shm.ShmArena` (one shared-memory segment holding
the immutable flat columns; workers rebuild a
:class:`~repro.core.types.ColumnarModel` over zero-copy views) when
shared memory is available, falling back to a content-addressed pickle
blob otherwise (``REPRO_SHM`` / the ``shm`` parameter override, see
:func:`repro.core.shm.resolve_shm`).  Shard results ride back the same
way.  Both sides cache by content digest in small LRUs that release
their shm handles on eviction.

Worker processes come from an *injected* pool: anything with a
``submit(fn, *args) -> future`` method (the layering lint enforces that
this module never imports ``repro.experiments`` — pass
``repro.experiments.executor.persistent_pool(n)`` in from above, or let
:func:`default_pool` build a private stdlib pool).
"""

from __future__ import annotations

import atexit
import hashlib
import os
import pickle
import time
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Protocol, Sequence

import numpy as np

from repro import obs
from repro.core.allocation import Allocation
from repro.core.constraints import evaluate_constraints
from repro.core.context import EvalContext
from repro.core.cost_model import CostModel
from repro.core.fast_partition import optional_marks_batched, partition_pages_batched
from repro.core.offload import (
    OffloadConfig,
    OffloadOutcome,
    absorb_extra_workload,
    offload_repository,
)
from repro.core.restoration import (
    ProcessingRestorationStats,
    StorageRestorationStats,
    restore_processing_capacity,
    restore_storage_capacity,
)
from repro.core.shm import ShmArena, resolve_shm
from repro.core.types import MODEL_COLUMN_FIELDS, ColumnarModel, SystemModel
from repro.obs.manifest import WORKER_ENV_VAR
from repro.obs.registry import MetricsRegistry, use_registry
from repro.util.validation import env_positive_int

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.policy import PolicyResult

__all__ = [
    "ShardPool",
    "InlineShardPool",
    "default_pool",
    "shutdown_shard_pool",
    "resolve_shards",
    "plan_shards",
    "run_sharded_policy",
]


# ----------------------------------------------------------------------
# pool injection
# ----------------------------------------------------------------------
class ShardPool(Protocol):
    """What the sharded driver needs from a worker pool.

    :class:`concurrent.futures.ProcessPoolExecutor` satisfies it, as
    does the persistent pool in ``repro.experiments.executor`` — which
    must be *passed in* by an upper layer, never imported from here.
    """

    def submit(self, fn, /, *args, **kwargs) -> Any:  # pragma: no cover
        """Schedule ``fn(*args, **kwargs)``; return a future with ``result()``."""
        ...


class InlineShardPool:
    """Serial in-process pool: ``submit`` runs the task immediately.

    The deterministic no-subprocess harness for the differential tests
    (Hypothesis drives hundreds of examples; forking per example would
    dominate) and a zero-dependency fallback anywhere process pools are
    unavailable.  Because it runs in-process, the driver skips both the
    pickle round-trip and the shared-memory transport (``inline =
    True``).
    """

    inline = True

    def submit(self, fn, /, *args, **kwargs) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - mirror executor semantics
            future.set_exception(exc)
        return future


_POOL: ProcessPoolExecutor | None = None
_POOL_SIZE = 0


def _shard_worker_init() -> None:
    """Tag the process as a worker so run manifests get per-worker paths."""
    os.environ[WORKER_ENV_VAR] = str(os.getpid())


def default_pool(workers: int) -> ProcessPoolExecutor:
    """A persistent private pool of at least ``workers`` processes.

    Used when no pool is injected.  Persistent for the same reason the
    experiment executor's pool is: workers cache unpickled models by
    content digest, so back-to-back runs (benchmark repeats, golden
    tests) skip the per-run model transfer cost.
    """
    global _POOL, _POOL_SIZE
    if _POOL is None or _POOL_SIZE < workers:
        if _POOL is not None:
            _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = ProcessPoolExecutor(
            max_workers=workers, initializer=_shard_worker_init
        )
        _POOL_SIZE = workers
    return _POOL


def shutdown_shard_pool() -> None:
    """Tear down the private default pool and release parent shm arenas."""
    global _POOL, _POOL_SIZE
    if _POOL is not None:
        _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = None
        _POOL_SIZE = 0
    _PARENT_ARENAS.clear()


atexit.register(shutdown_shard_pool)


# ----------------------------------------------------------------------
# shard-count resolution and planning
# ----------------------------------------------------------------------
def resolve_shards(
    shards: int | None = None, n_servers: int | None = None
) -> int | None:
    """Resolve the shard count: explicit value, else ``REPRO_SHARDS``, else auto.

    Mirrors ``repro.experiments.executor.resolve_jobs``: explicit
    non-positive / non-integer values and malformed environment values
    raise :class:`ValueError` naming the offending source.  With
    ``n_servers`` known, auto resolves to
    ``min(n_servers, cpu_count)`` and any request exceeding the server
    count is rejected — a shard owns whole servers, so there is nothing
    for an extra shard to do.  Without ``n_servers`` (e.g. CLI argument
    validation before a model exists) an unset value stays ``None``.
    """
    if shards is None:
        shards = env_positive_int("REPRO_SHARDS", default=None)
    elif isinstance(shards, bool) or not isinstance(shards, int):
        raise ValueError(f"shards must be a positive integer, got {shards!r}")
    elif shards <= 0:
        raise ValueError(f"shards must be a positive integer, got {shards}")
    if shards is None:
        if n_servers is None:
            return None
        shards = max(1, min(n_servers, os.cpu_count() or 1))
    if n_servers is not None and shards > n_servers:
        raise ValueError(
            f"shards must not exceed the model's server count "
            f"({n_servers}), got {shards}"
        )
    return shards


def _server_weights(model: SystemModel) -> np.ndarray:
    """Per-server work proxy: compulsory + optional entry counts.

    The restoration loops' cost scales with the number of matrix entries
    a server owns, so balancing entry counts balances shard wall-clock.
    Computed from the flat model arrays — no context build needed.
    """
    comp_per_page = np.diff(model.comp_indptr)
    opt_per_page = np.diff(model.opt_indptr)
    return np.bincount(
        model.page_server,
        weights=(comp_per_page + opt_per_page).astype(float),
        minlength=model.n_servers,
    )


def plan_shards(model: SystemModel, shards: int) -> tuple[tuple[int, ...], ...]:
    """Deterministically split the servers into ``shards`` balanced groups.

    Longest-processing-time greedy over :func:`_server_weights`: servers
    in decreasing weight order (ties by ascending id) each go to the
    currently lightest group (load ties broken by fewest members, then
    lowest group index — so zero-weight servers spread out instead of
    piling into group 0).  With ``shards <= n_servers`` every group
    therefore receives at least one server; a group holding only
    zero-weight servers (servers with no pages) is a valid *empty
    shard* — its worker is a structured no-op.

    Returns the groups with each group's server ids ascending.  Group
    composition is a pure function of the model, so two runs over equal
    models shard identically.
    """
    n_servers = model.n_servers
    if shards < 1 or shards > n_servers:
        raise ValueError(
            f"shards must be between 1 and the model's server count "
            f"({n_servers}), got {shards}"
        )
    weights = _server_weights(model)
    order = sorted(range(n_servers), key=lambda i: (-weights[i], i))
    loads = [0.0] * shards
    groups: list[list[int]] = [[] for _ in range(shards)]
    for i in order:
        g = min(range(shards), key=lambda s: (loads[s], len(groups[s]), s))
        groups[g].append(i)
        loads[g] += float(weights[i])
    return tuple(tuple(sorted(g)) for g in groups)


# ----------------------------------------------------------------------
# content-addressed model transport
# ----------------------------------------------------------------------
class _Lru:
    """Tiny ordered LRU with an eviction callback.

    Both model caches (worker-side unpickled/attached models, parent-side
    model arenas) hold shared-memory resources that must be released the
    moment an entry falls out — a plain dict would leak segments until
    process exit.
    """

    def __init__(
        self, cap: int, on_evict: Callable[[str, Any], None] | None = None
    ):
        self._cap = cap
        self._on_evict = on_evict
        self._data: OrderedDict[str, Any] = OrderedDict()

    def get(self, key: str) -> Any | None:
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key: str, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self._cap:
            k, v = self._data.popitem(last=False)
            if self._on_evict is not None:
                self._on_evict(k, v)

    def values(self):
        return self._data.values()

    def clear(self) -> None:
        while self._data:
            k, v = self._data.popitem(last=False)
            if self._on_evict is not None:
                self._on_evict(k, v)

    def __len__(self) -> int:
        return len(self._data)


def _model_digest(model: SystemModel) -> str:
    """Content digest of the model's flat columns (cached on the model).

    Hashes the raw column buffers plus the repository spec and shape
    header — no full-model pickle, so the shm fast path never serialises
    the arrays at all.  Cached under an underscore attribute, which the
    model's ``__getstate__`` strips, so the digest never travels.
    """
    cached = getattr(model, "_repro_model_digest", None)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    h.update(
        pickle.dumps(
            (model.repository, model.n_servers, model.n_pages, model.n_objects),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    )
    for name in MODEL_COLUMN_FIELDS:
        a = np.ascontiguousarray(getattr(model, name))
        h.update(name.encode())
        h.update(memoryview(a).cast("B"))
    digest = h.hexdigest()
    model._repro_model_digest = digest
    return digest


#: Parent-side arenas holding each model's columns in shared memory,
#: keyed by content digest.  Two entries cover the common interleavings
#: (e.g. a benchmark alternating between a constrained and an
#: unconstrained clone); eviction destroys the segment — safe because
#: every payload referencing an arena is consumed within its own
#: ``run_sharded_policy`` call, before any other model can evict it.
_PARENT_ARENAS = _Lru(2, lambda _digest, arena: arena.destroy())


def _model_arena(model: SystemModel) -> tuple[str, ShmArena]:
    """The (digest, arena) pair for ``model``, creating the arena once."""
    digest = _model_digest(model)
    arena = _PARENT_ARENAS.get(digest)
    if arena is None:
        arena = ShmArena.create(
            {name: getattr(model, name) for name in MODEL_COLUMN_FIELDS},
            owner=True,
        )
        _PARENT_ARENAS.put(digest, arena)
    return digest, arena


def _evict_worker_model(_digest: str, value: tuple) -> None:
    """Release an evicted worker model's shm mapping.

    Safe even though the evicted model's columns are views into the
    arena: the LRU held the only strong reference, so by the time the
    callback runs nothing can read those views again (closing with live
    views dangles them on Linux — see :meth:`ShmArena.close`).  The
    segment itself is owned (and unlinked) by the parent.
    """
    _model, arena = value
    if arena is not None:
        arena.close()


#: Worker-side cache of materialised models, keyed by payload digest —
#: ``(model, arena-or-None)`` values, arena present for shm payloads.
_WORKER_MODELS = _Lru(2, _evict_worker_model)


def _model_from_payload(payload: tuple) -> SystemModel:
    """Materialise the run's model inside a worker (or inline).

    Three payload kinds: ``("model", m)`` passes the object through
    (inline pool — same process); ``("blob", digest, blob)`` unpickles a
    full model; ``("shm", digest, handle, repo_blob)`` attaches the
    parent's column arena and rebuilds a zero-copy
    :class:`~repro.core.types.ColumnarModel` over its views.  The two
    shipped kinds cache by digest so repeated runs over the same model
    pay materialisation once per worker.
    """
    kind = payload[0]
    if kind == "model":
        return payload[1]
    digest = payload[1]
    cached = _WORKER_MODELS.get(digest)
    if cached is not None:
        return cached[0]
    if kind == "shm":
        _, _, handle, repo_blob = payload
        arena = ShmArena.attach(handle, owner=False)
        model: SystemModel = ColumnarModel.from_columns(
            arena.arrays(), pickle.loads(repo_blob)
        )
    else:
        _, _, blob = payload
        arena = None
        model = pickle.loads(blob)
    _WORKER_MODELS.put(digest, (model, arena))
    return model


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ShardOptions:
    """Per-run knobs shipped to every shard worker."""

    alpha1: float
    alpha2: float
    optional_policy: str
    record: bool
    use_shm: bool = False


#: Result arrays eligible for the shared-memory return path.
_RESULT_ARRAY_FIELDS = (
    "comp_partition_idx",
    "opt_partition_idx",
    "comp_final_idx",
    "opt_final_idx",
    "replica_objects",
    "replica_indptr",
)


@dataclass
class _ShardResult:
    """One shard's candidate frontier, shipped back for reconciliation.

    Marks travel as **global entry indices** (only the set positions)
    rather than full-length booleans: a shard can only set entries it
    owns, so the parent reconcile is a plain index assignment, and the
    payload shrinks from O(model) to O(shard frontier).  Replicas are a
    CSR pair (``replica_objects`` concatenated per server in
    ``server_ids`` order, ``replica_indptr`` bounds).  When the run uses
    shared memory the arrays ride a worker-created
    :class:`~repro.core.shm.ShmArena` whose ownership transfers to the
    parent (:meth:`ship_shm` / :meth:`load_shm`).
    """

    server_ids: tuple[int, ...]
    n_pages: int
    n_entries: int
    comp_partition_idx: np.ndarray | None
    opt_partition_idx: np.ndarray | None
    comp_final_idx: np.ndarray | None
    opt_final_idx: np.ndarray | None
    replica_objects: np.ndarray | None
    replica_indptr: np.ndarray | None
    storage_ran: bool
    processing_ran: bool
    storage_stats: list[tuple[int, StorageRestorationStats]]
    processing_stats: list[tuple[int, ProcessingRestorationStats]]
    phase_seconds: dict[str, float] = field(default_factory=dict)
    seconds: float = 0.0
    snapshot: dict | None = None
    shm_handle: dict | None = None
    shm_bytes: int = 0

    def ship_shm(self) -> None:
        """Move the result arrays into a shm segment (worker side).

        The worker creates the segment as a *non-owner* — the parent,
        the only reader, adopts ownership on :meth:`load_shm` and
        unlinks after reconcile, so a worker crash between the two never
        strands anonymous segments beyond the run's pool lifetime.
        """
        arena = ShmArena.create(
            {f: getattr(self, f) for f in _RESULT_ARRAY_FIELDS}, owner=False
        )
        self.shm_bytes = arena.nbytes
        self.shm_handle = arena.handle
        for f in _RESULT_ARRAY_FIELDS:
            setattr(self, f, None)
        arena.close()

    def load_shm(self) -> ShmArena | None:
        """Re-point the result arrays at the shm views (parent side)."""
        if self.shm_handle is None:
            return None
        arena = ShmArena.attach(self.shm_handle, owner=True)
        for f in _RESULT_ARRAY_FIELDS:
            setattr(self, f, arena.get(f))
        self.shm_handle = None
        return arena

    def release_arrays(self) -> None:
        """Drop the array references so a backing arena can close cleanly."""
        for f in _RESULT_ARRAY_FIELDS:
            setattr(self, f, None)


def _shard_pipeline(
    model: SystemModel, server_ids: Sequence[int], opts: _ShardOptions
) -> _ShardResult:
    """PARTITION + per-server restorations for one group of servers.

    Runs on the **restricted model**: ``EvalContext.for_servers`` builds
    columns, streams and CSR groups for exactly this group's pages, so
    the worker never touches (or pays for) the other shards' entries.
    Identity with the full-model run holds because the restriction is
    order-preserving (module docstring); results are mapped back to
    global entry ids through the context's ``global_*`` index columns.

    Phase gating matches the reference pipeline exactly: the reference
    gates each restoration on the *global* constraint report, but both
    constraints are per-server decomposable and restoring a
    non-violating server is a no-op, so gating on the local report
    yields the same allocation — and the parent ORs the per-shard flags
    to reconstruct the global phase list.
    """
    t0 = time.perf_counter()
    ctx = EvalContext.for_servers(model, server_ids)
    sub = ctx.model
    cost = CostModel(sub, opts.alpha1, opts.alpha2)
    phase_seconds: dict[str, float] = {}

    t = time.perf_counter()
    alloc = Allocation(sub)
    if sub.n_pages:
        comp_marks, _, _ = partition_pages_batched(sub)
        alloc.set_comp_local_bulk(np.flatnonzero(comp_marks), True)
    opt_marks = optional_marks_batched(sub, opts.optional_policy)
    alloc.set_opt_local_bulk(np.flatnonzero(opt_marks), True)
    phase_seconds["partition"] = time.perf_counter() - t
    comp_partition = alloc.comp_local.copy()
    opt_partition = alloc.opt_local.copy()

    report = evaluate_constraints(alloc)
    n_local = len(server_ids)
    storage_stats: list[tuple[int, StorageRestorationStats]] = []
    storage_ran = bool(report.violated_servers_storage())
    if storage_ran:
        t = time.perf_counter()
        for li in range(n_local):
            stats = restore_storage_capacity(alloc, cost, server_id=li)
            # eviction records carry server ids — map back to global
            # (object ids are already global in the restricted model)
            stats.evicted_objects = [
                (int(server_ids[s]), k) for s, k in stats.evicted_objects
            ]
            storage_stats.append((int(server_ids[li]), stats))
        phase_seconds["storage-restoration"] = time.perf_counter() - t
        report = evaluate_constraints(alloc)

    processing_stats: list[tuple[int, ProcessingRestorationStats]] = []
    processing_ran = bool(report.violated_servers_processing())
    if processing_ran:
        t = time.perf_counter()
        for li in range(n_local):
            processing_stats.append(
                (
                    int(server_ids[li]),
                    restore_processing_capacity(alloc, cost, server_id=li),
                )
            )
        phase_seconds["processing-restoration"] = time.perf_counter() - t

    replica_indptr = np.zeros(n_local + 1, dtype=np.int64)
    for li in range(n_local):
        replica_indptr[li + 1] = replica_indptr[li] + len(alloc.replicas[li])
    replica_objects = np.zeros(int(replica_indptr[-1]), dtype=np.int64)
    for li in range(n_local):
        replica_objects[replica_indptr[li] : replica_indptr[li + 1]] = sorted(
            alloc.replicas[li]
        )

    ge_c = ctx.global_comp_entries
    ge_o = ctx.global_opt_entries
    return _ShardResult(
        server_ids=tuple(int(i) for i in server_ids),
        n_pages=int(sub.n_pages),
        n_entries=int(len(sub.comp_objects) + len(sub.opt_objects)),
        comp_partition_idx=ge_c[comp_partition],
        opt_partition_idx=ge_o[opt_partition],
        comp_final_idx=ge_c[alloc.comp_local],
        opt_final_idx=ge_o[alloc.opt_local],
        replica_objects=replica_objects,
        replica_indptr=replica_indptr,
        storage_ran=storage_ran,
        processing_ran=processing_ran,
        storage_stats=storage_stats,
        processing_stats=processing_stats,
        phase_seconds=phase_seconds,
        seconds=time.perf_counter() - t0,
    )


def _run_shard(
    payload: tuple, server_ids: tuple[int, ...], opts: _ShardOptions
) -> _ShardResult:
    """Worker entry point: resolve the model, record into a private
    registry when the parent is collecting, return the shard frontier."""
    model = _model_from_payload(payload)
    registry = MetricsRegistry() if opts.record else None
    with use_registry(registry):
        result = _shard_pipeline(model, server_ids, opts)
    if registry is not None:
        result.snapshot = registry.snapshot()
    if opts.use_shm:
        result.ship_shm()
    return result


# ----------------------------------------------------------------------
# parallel off-loading scatter
# ----------------------------------------------------------------------
def _absorb_server(
    payload: tuple,
    opts: _ShardOptions,
    server_id: int,
    target: float,
    allow_new_replicas: bool,
    allow_swap: bool,
    kernel: str,
    comp_marks: np.ndarray,
    opt_marks: np.ndarray,
    replica_objs: np.ndarray,
) -> dict:
    """Score and apply one server's absorption on its restricted model.

    The worker receives the server's current mark slices (ascending
    global entry order — exactly the single-server restricted model's
    entry order) and replica set, replays
    :func:`~repro.core.offload.absorb_extra_workload` on a one-server
    :class:`~repro.core.context.EvalContext`, and returns the mark
    *deltas* in global entry ids plus the final replica set.  Per-server
    decomposability (see ``absorb_round_serial``'s contract) makes this
    bit-identical to absorbing in the parent.
    """
    model = _model_from_payload(payload)
    ctx = EvalContext.for_servers(model, (int(server_id),))
    sub = ctx.model
    comp0 = np.asarray(comp_marks, dtype=bool)
    opt0 = np.asarray(opt_marks, dtype=bool)
    alloc = Allocation(
        sub, comp0, opt0, replicas=[set(int(k) for k in replica_objs)]
    )
    cost = CostModel(sub, opts.alpha1, opts.alpha2)
    registry = MetricsRegistry() if opts.record else None
    with use_registry(registry):
        achieved = absorb_extra_workload(
            alloc,
            cost,
            0,
            float(target),
            allow_new_replicas=bool(allow_new_replicas),
            allow_swap=bool(allow_swap),
            kernel=kernel,
        )
    ge_c = ctx.global_comp_entries
    ge_o = ctx.global_opt_entries
    replicas = alloc.replicas[0]
    return {
        "achieved": float(achieved),
        "comp_set": ge_c[alloc.comp_local & ~comp0],
        "comp_clear": ge_c[comp0 & ~alloc.comp_local],
        "opt_set": ge_o[alloc.opt_local & ~opt0],
        "opt_clear": ge_o[opt0 & ~alloc.opt_local],
        "replicas": np.fromiter(
            sorted(replicas), dtype=np.int64, count=len(replicas)
        ),
        "snapshot": registry.snapshot() if registry is not None else None,
    }


def _entries_by_server(
    entry_server: np.ndarray, n_servers: int
) -> tuple[np.ndarray, np.ndarray]:
    """Stable ``(order, bounds)`` grouping entry ids by owning server.

    ``order[bounds[i]:bounds[i+1]]`` is server ``i``'s flat entry ids in
    ascending order — the same order ``restrict_to_servers`` selects
    them, which is what keeps the scatter's mark slices aligned with the
    worker's single-server context.
    """
    order = np.argsort(entry_server, kind="stable")
    bounds = np.searchsorted(entry_server[order], np.arange(n_servers + 1))
    return order, bounds


class _ShardedScatter:
    """Process-parallel absorption scatter for ``offload_repository``.

    Satisfies the :func:`~repro.core.offload.absorb_round_serial`
    contract: every round, each addressed server's absorption runs in a
    pool worker against a single-server restricted context
    (:func:`_absorb_server`); the parent applies the returned deltas in
    **plan order**, so the mutation sequence the order-sensitive gather
    observes matches the serial reference exactly.
    """

    def __init__(
        self, pool: ShardPool, payload: tuple, model: SystemModel,
        opts: _ShardOptions,
    ):
        self._pool = pool
        self._payload = payload
        self._opts = opts
        ctx = EvalContext.for_model(model)
        self._comp_order, self._comp_bounds = _entries_by_server(
            ctx.comp_server, model.n_servers
        )
        self._opt_order, self._opt_bounds = _entries_by_server(
            ctx.opt_server, model.n_servers
        )

    def _server_entries(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        comp = self._comp_order[self._comp_bounds[i] : self._comp_bounds[i + 1]]
        opt = self._opt_order[self._opt_bounds[i] : self._opt_bounds[i + 1]]
        return comp, opt

    def __call__(
        self,
        alloc: Allocation,
        cost: CostModel,
        requests: list[tuple[int, float, bool]],
        *,
        allow_swap: bool = True,
        kernel: str = "batched",
    ) -> dict[int, float]:
        jobs = []
        for i, req, allow_new in requests:
            comp_e, opt_e = self._server_entries(i)
            jobs.append(
                (
                    i,
                    self._pool.submit(
                        _absorb_server,
                        self._payload,
                        self._opts,
                        int(i),
                        float(req),
                        bool(allow_new),
                        bool(allow_swap),
                        kernel,
                        alloc.comp_local[comp_e],
                        alloc.opt_local[opt_e],
                        np.fromiter(
                            sorted(alloc.replicas[i]),
                            dtype=np.int64,
                            count=len(alloc.replicas[i]),
                        ),
                    ),
                )
            )
        reg = obs.get_registry()
        achieved: dict[int, float] = {}
        for i, future in jobs:
            res = future.result()
            alloc.set_comp_local_bulk(res["comp_set"], True)
            alloc.set_comp_local_bulk(res["comp_clear"], False)
            alloc.set_opt_local_bulk(res["opt_set"], True)
            alloc.set_opt_local_bulk(res["opt_clear"], False)
            alloc.replicas[i] = set(res["replicas"].tolist())
            achieved[i] = res["achieved"]
            if res["snapshot"] is not None and reg.enabled:
                reg.merge_snapshot(res["snapshot"])
        return achieved


# ----------------------------------------------------------------------
# parent side: fan out, reconcile, replay the global phases
# ----------------------------------------------------------------------
def run_sharded_policy(
    model: SystemModel,
    alpha1: float = 2.0,
    alpha2: float = 1.0,
    optional_policy: str = "all",
    offload_config: OffloadConfig | None = None,
    shards: int | None = None,
    pool: ShardPool | None = None,
    shm: bool | None = None,
) -> "PolicyResult":
    """The full policy pipeline, sharded over a worker pool.

    Bit-identical to ``RepositoryReplicationPolicy(kernel="batched")``
    on allocation, objectives, stats, constraint report and phase list
    — see the module docstring for why.

    Parameters
    ----------
    shards:
        Group count; resolved via :func:`resolve_shards` (explicit →
        ``REPRO_SHARDS`` → ``min(n_servers, cpu_count)``).
    pool:
        Injected :class:`ShardPool`; defaults to this module's private
        persistent :func:`default_pool`.  Pass
        :class:`InlineShardPool` to run serially in-process.
    shm:
        Shared-memory transport override, resolved via
        :func:`repro.core.shm.resolve_shm` (explicit → ``REPRO_SHM`` →
        available).  Ignored (off) for inline pools — there is no
        process boundary to cross.
    """
    from repro.core.policy import PolicyResult

    reg = obs.get_registry()
    cost = CostModel(model, alpha1, alpha2)
    n_shards = resolve_shards(shards, n_servers=model.n_servers)
    groups = plan_shards(model, n_shards)
    if pool is None:
        pool = default_pool(len(groups))
    inline = bool(getattr(pool, "inline", False))
    use_shm = False if inline else resolve_shm(shm)
    pickle_bytes_avoided = 0.0
    if inline:
        payload: tuple = ("model", model)
    elif use_shm:
        digest, arena = _model_arena(model)
        payload = (
            "shm",
            "shm:" + digest,
            arena.handle,
            pickle.dumps(model.repository, protocol=pickle.HIGHEST_PROTOCOL),
        )
        pickle_bytes_avoided += float(arena.nbytes)
    else:
        blob = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
        payload = ("blob", "blob:" + hashlib.sha256(blob).hexdigest(), blob)
    opts = _ShardOptions(
        alpha1=alpha1,
        alpha2=alpha2,
        optional_policy=optional_policy,
        record=reg.enabled,
        use_shm=use_shm,
    )

    spans: dict[str, obs.SpanRecord] = {}
    with reg.span("policy"):
        with reg.span("shard-fanout") as fan:
            spans["shard-fanout"] = fan
            futures = [
                pool.submit(_run_shard, payload, group, opts)
                for group in groups
            ]
            results = [f.result() for f in futures]

        ne_c = len(model.comp_objects)
        ne_o = len(model.opt_objects)
        comp_part = np.zeros(ne_c, dtype=bool)
        opt_part = np.zeros(ne_o, dtype=bool)
        comp_fin = np.zeros(ne_c, dtype=bool)
        opt_fin = np.zeros(ne_o, dtype=bool)
        replicas: list[set[int] | None] = [None] * model.n_servers
        result_arenas: list[ShmArena] = []
        for r in results:
            arena = r.load_shm()
            if arena is not None:
                arena.unlink()  # name gone now; memory lives until close
                result_arenas.append(arena)
                pickle_bytes_avoided += float(arena.nbytes)
            comp_part[r.comp_partition_idx] = True
            opt_part[r.opt_partition_idx] = True
            comp_fin[r.comp_final_idx] = True
            opt_fin[r.opt_final_idx] = True
            indptr = r.replica_indptr
            objs = r.replica_objects
            for li, gi in enumerate(r.server_ids):
                replicas[gi] = set(
                    objs[int(indptr[li]) : int(indptr[li + 1])].tolist()
                )
            r.release_arrays()
        for arena in result_arenas:
            arena.close()
        assert all(r is not None for r in replicas), "shard plan missed a server"

        unconstrained_d = cost.D(Allocation(model, comp_part, opt_part))
        phases: list[str] = ["partition"]

        # Stats merge in global server order — the reference loop's
        # accumulation sequence, so float partial sums match bitwise.
        storage_stats = StorageRestorationStats()
        if any(r.storage_ran for r in results):
            phases.append("storage-restoration")
            by_server = {i: s for r in results for i, s in r.storage_stats}
            for i in sorted(by_server):
                storage_stats.merge(by_server[i])

        processing_stats = ProcessingRestorationStats()
        if any(r.processing_ran for r in results):
            phases.append("processing-restoration")
            by_server = {i: s for r in results for i, s in r.processing_stats}
            for i in sorted(by_server):
                processing_stats.merge(by_server[i])

        alloc = Allocation(model, comp_fin, opt_fin, replicas=replicas)
        report = evaluate_constraints(alloc)

        # OFF_LOADING's repository-side bookkeeping (NewReq shares, L3
        # demotion, message counts) negotiates against the *global*
        # Eq. 9 frontier, so it replays in the parent — but each round's
        # per-server absorptions are independent, so they scatter back
        # to the pool.
        offload_outcome: OffloadOutcome | None = None
        if not report.repo_ok:
            scatter = _ShardedScatter(pool, payload, model, opts)
            with reg.span("off-loading") as sp:
                spans["off-loading"] = sp
                offload_outcome = offload_repository(
                    alloc,
                    cost,
                    offload_config or OffloadConfig(),
                    scatter=scatter,
                )
            phases.append("off-loading")
            report = evaluate_constraints(alloc)

        objective = cost.D(alloc)

    phase_seconds: dict[str, float] = {}
    if reg.enabled:
        for idx, r in enumerate(results):
            reg.gauge(f"shard.{idx}.servers", float(len(r.server_ids)))
            reg.gauge(f"shard.{idx}.pages", float(r.n_pages))
            reg.gauge(f"shard.{idx}.entries", float(r.n_entries))
            reg.gauge(f"shard.{idx}.context_entries", float(r.n_entries))
            reg.gauge(f"shard.{idx}.seconds", r.seconds)
            if r.snapshot is not None:
                reg.merge_snapshot(r.snapshot)
        reg.gauge("shard.count", float(len(groups)))
        reg.gauge("policy.context_entries_full", float(ne_c + ne_o))
        reg.gauge(
            "shm.bytes_shared",
            float(sum(a.nbytes for a in _PARENT_ARENAS.values())),
        )
        reg.gauge("shard.pickle_bytes_avoided", pickle_bytes_avoided)
        # Per-phase wall clock: the slowest shard bounds each fanned-out
        # phase; the reconcile-side phases time their own spans.
        for name in ("partition", "storage-restoration", "processing-restoration"):
            worst = max(
                (r.phase_seconds.get(name, 0.0) for r in results), default=0.0
            )
            if name in phases or name == "partition":
                phase_seconds[name] = worst
        phase_seconds["shard-fanout"] = spans["shard-fanout"].seconds
        if "off-loading" in spans:
            phase_seconds["off-loading"] = spans["off-loading"].seconds
        reg.count("policy.runs")
        reg.count("policy.kernel.sharded")
        reg.gauge("policy.objective", objective)
        reg.gauge("policy.unconstrained_objective", unconstrained_d)
        reg.gauge("policy.feasible", float(report.ok))
        reg.gauge("policy.phases_run", float(len(phases)))

    return PolicyResult(
        allocation=alloc,
        objective=objective,
        constraints=report,
        storage_stats=storage_stats,
        processing_stats=processing_stats,
        offload_outcome=offload_outcome,
        unconstrained_objective=unconstrained_d,
        phases_run=phases,
        phase_seconds=phase_seconds,
    )

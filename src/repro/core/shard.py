"""Sharded process-parallel policy kernel (``kernel="sharded"``).

The paper's pipeline pins every page to exactly one server, which makes
the hot phases *per-server decomposable*:

* **PARTITION** (Section 4.2) is per page — a page's greedy depends only
  on its own server's link parameters and its own objects;
* **storage restoration** (Eq. 10) and **processing restoration**
  (Eq. 8) are per server — every candidate score, eviction,
  re-partition and switch reads and writes only the target server's
  pages, entries and replica set;
* even **OFF_LOADING**'s server-side *absorption* (the inner loop of
  Eq. 9's negotiation) only touches the absorbing server — only the
  repository-side round bookkeeping (``NewReq`` shares, ``L3``
  demotion, message counts) is order-sensitive.

The sharded kernel exploits all three:

1. it splits the servers into ``shards`` groups (deterministic balanced
   LPT over per-server entry counts, :func:`plan_shards`);
2. each worker process builds a **shard-local**
   :class:`~repro.core.context.EvalContext` via
   :meth:`~repro.core.context.EvalContext.for_servers` — columns, CSR
   groups and page streams for exactly its servers' pages, so worker
   setup is O(shard) instead of O(model) — and runs PARTITION + both
   restorations on the restricted model (:func:`_run_shard`);
3. the parent reconciles: scatters the per-shard mark/replica frontiers
   (shipped as *global* entry indices) back into one global
   :class:`~repro.core.allocation.Allocation`, recomputes objectives
   and constraints over the merged state, and replays the
   OFF_LOADING rounds with the repository-side bookkeeping in-process
   while each round's per-server absorptions scatter to the pool
   (:class:`_ShardedScatter` → :func:`_absorb_shard_batch`).

OFF_LOADING rounds are **delta rounds** (DESIGN.md Appendix I): each
worker keeps its shard's ``Allocation`` + shard-local ``EvalContext``
*resident* between submissions, keyed by ``(session, shard)`` and
validated by an exact-match round epoch.  The fan-out seeds the
resident state for free (a shard's post-restoration allocation *is*
the merged allocation restricted to that shard), so in steady state a
round ships only the round's absorption requests down and the flipped
``(server, object)`` marks back — O(round delta), not O(model).  All
of a round's absorptions addressed to the same shard travel in **one
batched submission**, routed to a pinned worker process by
:class:`_AffinityPool.submit_to`.  An epoch mismatch (different pool,
evicted state, forced ``REPRO_OFFLOAD_RESYNC_EVERY``) degrades to a
full resync: the parent re-ships the shard's mark/replica state —
through the parent-owned shared-memory **mark frontier** the workers
attach read-only when shm is on, or as pickled arrays otherwise —
and the round proceeds identically (bit-identity never depends on the
fast path being taken).

Bit-identity is the contract, not an aspiration: the merged allocation,
objective, stats and phase list equal the ``"batched"`` kernel's exactly
(property-tested in ``tests/properties/test_property_sharded_policy.py``
and pinned by the golden regressions).  Three details make that hold:

* objectives are evaluated in the **parent** over merged marks — a
  per-shard partial ``np.dot`` would change float summation order;
* restoration stats are merged in **global server order**, reproducing
  the reference loop's accumulation sequence;
* the restricted model preserves *order*: objects keep their global
  ids, pages/entries are renumbered by a strictly increasing map, so
  every score, float partial sum and index tie-break inside a shard
  matches the full-model run restricted to that shard (DESIGN.md
  Appendix H).

Transport: models ship to workers through a
:class:`~repro.core.shm.ShmArena` (one shared-memory segment holding
the immutable flat columns; workers rebuild a
:class:`~repro.core.types.ColumnarModel` over zero-copy views) when
shared memory is available, falling back to a content-addressed pickle
blob otherwise (``REPRO_SHM`` / the ``shm`` parameter override, see
:func:`repro.core.shm.resolve_shm`).  Shard results ride back the same
way.  Both sides cache by content digest in small LRUs that release
their shm handles on eviction.

Worker processes come from an *injected* pool: anything with a
``submit(fn, *args) -> future`` method (the layering lint enforces that
this module never imports ``repro.experiments`` — pass
``repro.experiments.executor.persistent_pool(n)`` in from above, or let
:func:`default_pool` build a private stdlib pool).
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import os
import pickle
import time
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Protocol, Sequence

import numpy as np

from repro import obs
from repro.core.allocation import Allocation
from repro.core.constraints import evaluate_constraints
from repro.core.context import EvalContext
from repro.core.cost_model import CostModel
from repro.core.fast_partition import optional_marks_batched, partition_pages_batched
from repro.core.offload import (
    OffloadConfig,
    OffloadOutcome,
    absorb_extra_workload,
    offload_repository,
)
from repro.core.restoration import (
    ProcessingRestorationStats,
    StorageRestorationStats,
    restore_processing_capacity,
    restore_storage_capacity,
)
from repro.core.shm import ShmArena, resolve_shm
from repro.core.types import (
    MODEL_COLUMN_FIELDS,
    ColumnarModel,
    SystemModel,
    pack_replicas,
    unpack_replicas,
)
from repro.obs.manifest import WORKER_ENV_VAR
from repro.obs.registry import MetricsRegistry, use_registry
from repro.util.validation import env_positive_int

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.policy import PolicyResult

__all__ = [
    "ShardPool",
    "InlineShardPool",
    "default_pool",
    "shutdown_shard_pool",
    "resolve_shards",
    "plan_shards",
    "run_sharded_policy",
]


# ----------------------------------------------------------------------
# pool injection
# ----------------------------------------------------------------------
class ShardPool(Protocol):
    """What the sharded driver needs from a worker pool.

    :class:`concurrent.futures.ProcessPoolExecutor` satisfies it, as
    does the persistent pool in ``repro.experiments.executor`` — which
    must be *passed in* by an upper layer, never imported from here.
    """

    def submit(self, fn, /, *args, **kwargs) -> Any:  # pragma: no cover
        """Schedule ``fn(*args, **kwargs)``; return a future with ``result()``."""
        ...


class InlineShardPool:
    """Serial in-process pool: ``submit`` runs the task immediately.

    The deterministic no-subprocess harness for the differential tests
    (Hypothesis drives hundreds of examples; forking per example would
    dominate) and a zero-dependency fallback anywhere process pools are
    unavailable.  Because it runs in-process, the driver skips both the
    pickle round-trip and the shared-memory transport (``inline =
    True``).
    """

    inline = True

    def submit(self, fn, /, *args, **kwargs) -> Future:
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - mirror executor semantics
            future.set_exception(exc)
        return future


_POOL: "_AffinityPool | None" = None
_POOL_SIZE = 0


def _shard_worker_init() -> None:
    """Tag the process as a worker so run manifests get per-worker paths."""
    os.environ[WORKER_ENV_VAR] = str(os.getpid())


class _AffinityPool:
    """``workers`` single-process executors with stable index routing.

    Worker-resident shard state (DESIGN.md Appendix I) only pays off if
    shard ``g``'s submissions keep landing on the same OS process — a
    shared :class:`~concurrent.futures.ProcessPoolExecutor` routes to
    whichever worker is free, which would turn every delta round into
    an epoch-mismatch resync.  This pool pins routing instead:
    :meth:`submit_to` sends a task to executor ``idx % workers``, so
    the sharded driver maps shard → worker one-to-one.  Plain
    :meth:`submit` (the :class:`ShardPool` protocol) round-robins.

    Pools without ``submit_to`` still work everywhere it is used — the
    driver falls back to ``submit`` and the epoch validation downgrades
    misrouted batches to resyncs (correct, just slower).
    """

    def __init__(self, workers: int):
        self._execs = tuple(
            ProcessPoolExecutor(max_workers=1, initializer=_shard_worker_init)
            for _ in range(workers)
        )
        self._rr = itertools.count()

    def __len__(self) -> int:
        return len(self._execs)

    def submit(self, fn, /, *args, **kwargs) -> Any:
        return self.submit_to(next(self._rr), fn, *args, **kwargs)

    def submit_to(self, idx: int, fn, /, *args, **kwargs) -> Any:
        """Schedule ``fn`` on the executor pinned to ``idx`` (mod size)."""
        return self._execs[idx % len(self._execs)].submit(fn, *args, **kwargs)

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        for ex in self._execs:
            ex.shutdown(wait=wait, cancel_futures=cancel_futures)


def default_pool(workers: int) -> _AffinityPool:
    """A persistent private pool of at least ``workers`` processes.

    Used when no pool is injected.  Persistent for the same reason the
    experiment executor's pool is: workers cache unpickled models by
    content digest, so back-to-back runs (benchmark repeats, golden
    tests) skip the per-run model transfer cost — and, since PR 9,
    worker-resident shard state survives across a run's off-loading
    rounds.  The pool is an :class:`_AffinityPool`, so shard → process
    routing is stable.
    """
    global _POOL, _POOL_SIZE
    if _POOL is None or _POOL_SIZE < workers:
        if _POOL is not None:
            _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = _AffinityPool(workers)
        _POOL_SIZE = workers
    return _POOL


def shutdown_shard_pool() -> None:
    """Tear down the private default pool and release parent shm arenas."""
    global _POOL, _POOL_SIZE
    if _POOL is not None:
        _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = None
        _POOL_SIZE = 0
    _PARENT_ARENAS.clear()


atexit.register(shutdown_shard_pool)


# ----------------------------------------------------------------------
# shard-count resolution and planning
# ----------------------------------------------------------------------
def resolve_shards(
    shards: int | None = None, n_servers: int | None = None
) -> int | None:
    """Resolve the shard count: explicit value, else ``REPRO_SHARDS``, else auto.

    Mirrors ``repro.experiments.executor.resolve_jobs``: explicit
    non-positive / non-integer values and malformed environment values
    raise :class:`ValueError` naming the offending source.  With
    ``n_servers`` known, auto resolves to
    ``min(n_servers, cpu_count)`` and any request exceeding the server
    count is rejected — a shard owns whole servers, so there is nothing
    for an extra shard to do.  Without ``n_servers`` (e.g. CLI argument
    validation before a model exists) an unset value stays ``None``.
    """
    if shards is None:
        shards = env_positive_int("REPRO_SHARDS", default=None)
    elif isinstance(shards, bool) or not isinstance(shards, int):
        raise ValueError(f"shards must be a positive integer, got {shards!r}")
    elif shards <= 0:
        raise ValueError(f"shards must be a positive integer, got {shards}")
    if shards is None:
        if n_servers is None:
            return None
        shards = max(1, min(n_servers, os.cpu_count() or 1))
    if n_servers is not None and shards > n_servers:
        raise ValueError(
            f"shards must not exceed the model's server count "
            f"({n_servers}), got {shards}"
        )
    return shards


def _server_weights(model: SystemModel) -> np.ndarray:
    """Per-server work proxy: compulsory + optional entry counts.

    The restoration loops' cost scales with the number of matrix entries
    a server owns, so balancing entry counts balances shard wall-clock.
    Computed from the flat model arrays — no context build needed.
    """
    comp_per_page = np.diff(model.comp_indptr)
    opt_per_page = np.diff(model.opt_indptr)
    return np.bincount(
        model.page_server,
        weights=(comp_per_page + opt_per_page).astype(float),
        minlength=model.n_servers,
    )


def plan_shards(model: SystemModel, shards: int) -> tuple[tuple[int, ...], ...]:
    """Deterministically split the servers into ``shards`` balanced groups.

    Longest-processing-time greedy over :func:`_server_weights`: servers
    in decreasing weight order (ties by ascending id) each go to the
    currently lightest group (load ties broken by fewest members, then
    lowest group index — so zero-weight servers spread out instead of
    piling into group 0).  With ``shards <= n_servers`` every group
    therefore receives at least one server; a group holding only
    zero-weight servers (servers with no pages) is a valid *empty
    shard* — its worker is a structured no-op.

    Returns the groups with each group's server ids ascending.  Group
    composition is a pure function of the model, so two runs over equal
    models shard identically.
    """
    n_servers = model.n_servers
    if shards < 1 or shards > n_servers:
        raise ValueError(
            f"shards must be between 1 and the model's server count "
            f"({n_servers}), got {shards}"
        )
    weights = _server_weights(model)
    order = sorted(range(n_servers), key=lambda i: (-weights[i], i))
    loads = [0.0] * shards
    groups: list[list[int]] = [[] for _ in range(shards)]
    for i in order:
        g = min(range(shards), key=lambda s: (loads[s], len(groups[s]), s))
        groups[g].append(i)
        loads[g] += float(weights[i])
    return tuple(tuple(sorted(g)) for g in groups)


# ----------------------------------------------------------------------
# content-addressed model transport
# ----------------------------------------------------------------------
class _Lru:
    """Tiny ordered LRU with an eviction callback.

    Both model caches (worker-side unpickled/attached models, parent-side
    model arenas) hold shared-memory resources that must be released the
    moment an entry falls out — a plain dict would leak segments until
    process exit.
    """

    def __init__(
        self, cap: int, on_evict: Callable[[str, Any], None] | None = None
    ):
        self._cap = cap
        self._on_evict = on_evict
        self._data: OrderedDict[str, Any] = OrderedDict()

    def get(self, key: str) -> Any | None:
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key: str, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self._cap:
            k, v = self._data.popitem(last=False)
            if self._on_evict is not None:
                self._on_evict(k, v)

    def values(self):
        return self._data.values()

    def clear(self) -> None:
        while self._data:
            k, v = self._data.popitem(last=False)
            if self._on_evict is not None:
                self._on_evict(k, v)

    def __len__(self) -> int:
        return len(self._data)


def _model_digest(model: SystemModel) -> str:
    """Content digest of the model's flat columns (cached on the model).

    Hashes the raw column buffers plus the repository spec and shape
    header — no full-model pickle, so the shm fast path never serialises
    the arrays at all.  Cached under an underscore attribute, which the
    model's ``__getstate__`` strips, so the digest never travels.
    """
    cached = getattr(model, "_repro_model_digest", None)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    h.update(
        pickle.dumps(
            (model.repository, model.n_servers, model.n_pages, model.n_objects),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    )
    for name in MODEL_COLUMN_FIELDS:
        a = np.ascontiguousarray(getattr(model, name))
        h.update(name.encode())
        h.update(memoryview(a).cast("B"))
    digest = h.hexdigest()
    model._repro_model_digest = digest
    return digest


#: Parent-side arenas holding each model's columns in shared memory,
#: keyed by content digest.  Two entries cover the common interleavings
#: (e.g. a benchmark alternating between a constrained and an
#: unconstrained clone); eviction destroys the segment — safe because
#: every payload referencing an arena is consumed within its own
#: ``run_sharded_policy`` call, before any other model can evict it.
_PARENT_ARENAS = _Lru(2, lambda _digest, arena: arena.destroy())


def _model_arena(model: SystemModel) -> tuple[str, ShmArena]:
    """The (digest, arena) pair for ``model``, creating the arena once."""
    digest = _model_digest(model)
    arena = _PARENT_ARENAS.get(digest)
    if arena is None:
        arena = ShmArena.create(
            {name: getattr(model, name) for name in MODEL_COLUMN_FIELDS},
            owner=True,
        )
        _PARENT_ARENAS.put(digest, arena)
    return digest, arena


def _evict_worker_model(_digest: str, value: tuple) -> None:
    """Release an evicted worker model's shm mapping.

    Safe even though the evicted model's columns are views into the
    arena: the LRU held the only strong reference, so by the time the
    callback runs nothing can read those views again (closing with live
    views dangles them on Linux — see :meth:`ShmArena.close`).  The
    segment itself is owned (and unlinked) by the parent.
    """
    _model, arena = value
    if arena is not None:
        arena.close()


#: Worker-side cache of materialised models, keyed by payload digest —
#: ``(model, arena-or-None)`` values, arena present for shm payloads.
_WORKER_MODELS = _Lru(2, _evict_worker_model)


def _model_from_payload(payload: tuple) -> SystemModel:
    """Materialise the run's model inside a worker (or inline).

    Three payload kinds: ``("model", m)`` passes the object through
    (inline pool — same process); ``("blob", digest, blob)`` unpickles a
    full model; ``("shm", digest, handle, repo_blob)`` attaches the
    parent's column arena and rebuilds a zero-copy
    :class:`~repro.core.types.ColumnarModel` over its views.  The two
    shipped kinds cache by digest so repeated runs over the same model
    pay materialisation once per worker.
    """
    kind = payload[0]
    if kind == "model":
        return payload[1]
    digest = payload[1]
    cached = _WORKER_MODELS.get(digest)
    if cached is not None:
        return cached[0]
    if kind == "shm":
        _, _, handle, repo_blob = payload
        arena = ShmArena.attach(handle, owner=False)
        model: SystemModel = ColumnarModel.from_columns(
            arena.arrays(), pickle.loads(repo_blob)
        )
    else:
        _, _, blob = payload
        arena = None
        model = pickle.loads(blob)
    _WORKER_MODELS.put(digest, (model, arena))
    return model


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ShardOptions:
    """Per-run knobs shipped to every shard worker."""

    alpha1: float
    alpha2: float
    optional_policy: str
    record: bool
    use_shm: bool = False
    session: str | None = None
    """Run-unique token keying worker-resident shard state.  ``None``
    disables residency seeding (the state is then built lazily by the
    first off-loading batch's resync)."""


#: Result arrays eligible for the shared-memory return path.
_RESULT_ARRAY_FIELDS = (
    "comp_partition_idx",
    "opt_partition_idx",
    "comp_final_idx",
    "opt_final_idx",
    "replica_objects",
    "replica_indptr",
)


@dataclass
class _ShardResult:
    """One shard's candidate frontier, shipped back for reconciliation.

    Marks travel as **global entry indices** (only the set positions)
    rather than full-length booleans: a shard can only set entries it
    owns, so the parent reconcile is a plain index assignment, and the
    payload shrinks from O(model) to O(shard frontier).  Replicas are a
    CSR pair (``replica_objects`` concatenated per server in
    ``server_ids`` order, ``replica_indptr`` bounds).  When the run uses
    shared memory the arrays ride a worker-created
    :class:`~repro.core.shm.ShmArena` whose ownership transfers to the
    parent (:meth:`ship_shm` / :meth:`load_shm`).
    """

    server_ids: tuple[int, ...]
    n_pages: int
    n_entries: int
    comp_partition_idx: np.ndarray | None
    opt_partition_idx: np.ndarray | None
    comp_final_idx: np.ndarray | None
    opt_final_idx: np.ndarray | None
    replica_objects: np.ndarray | None
    replica_indptr: np.ndarray | None
    storage_ran: bool
    processing_ran: bool
    storage_stats: list[tuple[int, StorageRestorationStats]]
    processing_stats: list[tuple[int, ProcessingRestorationStats]]
    phase_seconds: dict[str, float] = field(default_factory=dict)
    seconds: float = 0.0
    snapshot: dict | None = None
    shm_handle: dict | None = None
    shm_bytes: int = 0

    def ship_shm(self) -> None:
        """Move the result arrays into a shm segment (worker side).

        The worker creates the segment as a *non-owner* — the parent,
        the only reader, adopts ownership on :meth:`load_shm` and
        unlinks after reconcile, so a worker crash between the two never
        strands anonymous segments beyond the run's pool lifetime.
        """
        arena = ShmArena.create(
            {f: getattr(self, f) for f in _RESULT_ARRAY_FIELDS}, owner=False
        )
        self.shm_bytes = arena.nbytes
        self.shm_handle = arena.handle
        for f in _RESULT_ARRAY_FIELDS:
            setattr(self, f, None)
        arena.close()

    def load_shm(self) -> ShmArena | None:
        """Re-point the result arrays at the shm views (parent side)."""
        if self.shm_handle is None:
            return None
        arena = ShmArena.attach(self.shm_handle, owner=True)
        for f in _RESULT_ARRAY_FIELDS:
            setattr(self, f, arena.get(f))
        self.shm_handle = None
        return arena

    def release_arrays(self) -> None:
        """Drop the array references so a backing arena can close cleanly."""
        for f in _RESULT_ARRAY_FIELDS:
            setattr(self, f, None)


def _shard_pipeline(
    model: SystemModel, server_ids: Sequence[int], opts: _ShardOptions
) -> tuple[_ShardResult, EvalContext, CostModel, Allocation]:
    """PARTITION + per-server restorations for one group of servers.

    Runs on the **restricted model**: ``EvalContext.for_servers`` builds
    columns, streams and CSR groups for exactly this group's pages, so
    the worker never touches (or pays for) the other shards' entries.
    Identity with the full-model run holds because the restriction is
    order-preserving (module docstring); results are mapped back to
    global entry ids through the context's ``global_*`` index columns.

    Phase gating matches the reference pipeline exactly: the reference
    gates each restoration on the *global* constraint report, but both
    constraints are per-server decomposable and restoring a
    non-violating server is a no-op, so gating on the local report
    yields the same allocation — and the parent ORs the per-shard flags
    to reconstruct the global phase list.

    Returns the shippable :class:`_ShardResult` plus the live
    ``(ctx, cost, alloc)`` triple so :func:`_run_shard` can seed the
    worker-resident shard state: the final shard-restricted allocation
    *is* the parent's merged allocation restricted to this shard at
    off-loading start, so residency costs zero extra shipping.
    """
    t0 = time.perf_counter()
    ctx = EvalContext.for_servers(model, server_ids)
    sub = ctx.model
    cost = CostModel(sub, opts.alpha1, opts.alpha2)
    phase_seconds: dict[str, float] = {}

    t = time.perf_counter()
    alloc = Allocation(sub)
    if sub.n_pages:
        comp_marks, _, _ = partition_pages_batched(sub)
        alloc.set_comp_local_bulk(np.flatnonzero(comp_marks), True)
    opt_marks = optional_marks_batched(sub, opts.optional_policy)
    alloc.set_opt_local_bulk(np.flatnonzero(opt_marks), True)
    phase_seconds["partition"] = time.perf_counter() - t
    comp_partition = alloc.comp_local.copy()
    opt_partition = alloc.opt_local.copy()

    report = evaluate_constraints(alloc)
    n_local = len(server_ids)
    storage_stats: list[tuple[int, StorageRestorationStats]] = []
    storage_ran = bool(report.violated_servers_storage())
    if storage_ran:
        t = time.perf_counter()
        for li in range(n_local):
            stats = restore_storage_capacity(alloc, cost, server_id=li)
            # eviction records carry server ids — map back to global
            # (object ids are already global in the restricted model)
            stats.evicted_objects = [
                (int(server_ids[s]), k) for s, k in stats.evicted_objects
            ]
            storage_stats.append((int(server_ids[li]), stats))
        phase_seconds["storage-restoration"] = time.perf_counter() - t
        report = evaluate_constraints(alloc)

    processing_stats: list[tuple[int, ProcessingRestorationStats]] = []
    processing_ran = bool(report.violated_servers_processing())
    if processing_ran:
        t = time.perf_counter()
        for li in range(n_local):
            processing_stats.append(
                (
                    int(server_ids[li]),
                    restore_processing_capacity(alloc, cost, server_id=li),
                )
            )
        phase_seconds["processing-restoration"] = time.perf_counter() - t

    replica_indptr = np.zeros(n_local + 1, dtype=np.int64)
    for li in range(n_local):
        replica_indptr[li + 1] = replica_indptr[li] + len(alloc.replicas[li])
    replica_objects = np.zeros(int(replica_indptr[-1]), dtype=np.int64)
    for li in range(n_local):
        replica_objects[replica_indptr[li] : replica_indptr[li + 1]] = sorted(
            alloc.replicas[li]
        )

    ge_c = ctx.global_comp_entries
    ge_o = ctx.global_opt_entries
    result = _ShardResult(
        server_ids=tuple(int(i) for i in server_ids),
        n_pages=int(sub.n_pages),
        n_entries=int(len(sub.comp_objects) + len(sub.opt_objects)),
        comp_partition_idx=ge_c[comp_partition],
        opt_partition_idx=ge_o[opt_partition],
        comp_final_idx=ge_c[alloc.comp_local],
        opt_final_idx=ge_o[alloc.opt_local],
        replica_objects=replica_objects,
        replica_indptr=replica_indptr,
        storage_ran=storage_ran,
        processing_ran=processing_ran,
        storage_stats=storage_stats,
        processing_stats=processing_stats,
        phase_seconds=phase_seconds,
        seconds=time.perf_counter() - t0,
    )
    return result, ctx, cost, alloc


def _run_shard(
    payload: tuple,
    server_ids: tuple[int, ...],
    opts: _ShardOptions,
    shard_id: int = -1,
) -> _ShardResult:
    """Worker entry point: resolve the model, record into a private
    registry when the parent is collecting, return the shard frontier.

    When the run carries a residency ``session`` (and a real
    ``shard_id``), the pipeline's final context/cost/allocation are
    parked in :data:`_RESIDENT_SHARDS` at epoch 0 so the off-loading
    scatter's delta rounds start hot."""
    model = _model_from_payload(payload)
    registry = MetricsRegistry() if opts.record else None
    with use_registry(registry):
        result, ctx, cost, alloc = _shard_pipeline(model, server_ids, opts)
    if registry is not None:
        result.snapshot = registry.snapshot()
    if opts.session is not None and shard_id >= 0:
        _RESIDENT_SHARDS.put(
            (opts.session, int(shard_id)),
            _ResidentShard(ctx=ctx, cost=cost, alloc=alloc, epoch=0),
        )
    if opts.use_shm:
        result.ship_shm()
    return result


# ----------------------------------------------------------------------
# parallel off-loading scatter: worker-resident delta rounds
# ----------------------------------------------------------------------
@dataclass
class _ResidentShard:
    """One shard's live state parked in a worker between round batches.

    ``alloc`` mirrors the parent's merged allocation restricted to this
    shard — exactly current as long as every batch the parent sent for
    the shard was processed here, which the exact-match ``epoch``
    validates (per-server absorptions only touch the absorbing server,
    so nothing outside the shard can invalidate the mirror)."""

    ctx: EvalContext
    cost: CostModel
    alloc: Allocation
    epoch: int


#: Worker-side resident shard states, keyed by ``(session, shard id)``.
#: Bounded so abandoned sessions (benchmark repeats, failed runs) age
#: out; an evicted entry just means the next batch for that shard
#: resyncs.  No eviction callback — the values are plain heap state.
_RESIDENT_SHARDS: _Lru = _Lru(16)

_SESSION_SEQ = itertools.count()


def _absorb_shard_batch(
    payload: tuple,
    opts: _ShardOptions,
    session: str,
    shard_id: int,
    server_ids: tuple[int, ...],
    epoch: int,
    requests: list[tuple[int, float, bool]],
    allow_swap: bool,
    kernel: str,
    sync: tuple | None,
) -> dict:
    """Absorb one round's requests for one shard on its resident state.

    The delta-round worker half (DESIGN.md Appendix I).  ``requests``
    holds every ``(global_server_id, target, allow_new)`` of this
    round addressed to servers in ``server_ids``; all of them replay
    :func:`~repro.core.offload.absorb_extra_workload` on the shard's
    resident allocation in one submission — one pickle/shm hop, one
    context lookup.  Per-server decomposability (the
    ``absorb_round_serial`` contract) makes any batch grouping
    bit-identical to the serial reference.

    Epoch protocol: the fast path (``sync is None``) requires the
    resident state to exist **and** match ``epoch`` exactly — anything
    else returns ``{"resync": True}`` and the parent resubmits with a
    ``sync`` payload.  ``sync`` is either ``("state", comp_marks,
    opt_marks, replica_objects, replica_indptr)`` — the shard's mark
    slices in ascending global entry order plus its replica CSR — or
    ``("frontier", handle, replica_objects, replica_indptr)``, where
    marks are read in place from the parent-owned shared-memory mark
    frontier instead of travelling in the submission.  Either way the
    rebuilt state is bit-identical to the lost mirror, so a resync
    changes transport cost only, never results.

    Returns per-request mark/replica deltas in global ids, concatenated
    in request order, plus the advanced epoch.
    """
    key = (session, int(shard_id))
    res: _ResidentShard | None = _RESIDENT_SHARDS.get(key)
    frontier_read = False
    if sync is None:
        if res is None or res.epoch != int(epoch):
            return {"resync": True}
    else:
        model = _model_from_payload(payload)
        ctx = EvalContext.for_servers(model, server_ids)
        sub = ctx.model
        if sync[0] == "frontier":
            _, handle, rep_objs, rep_indptr = sync
            arena = ShmArena.attach(handle, owner=False)
            # fancy indexing copies, so no view survives the close
            comp0 = arena.get("comp_local")[ctx.global_comp_entries]
            opt0 = arena.get("opt_local")[ctx.global_opt_entries]
            arena.close()
            frontier_read = True
        else:
            _, comp_state, opt_state, rep_objs, rep_indptr = sync
            comp0 = np.array(comp_state, dtype=bool)
            opt0 = np.array(opt_state, dtype=bool)
        res = _ResidentShard(
            ctx=ctx,
            cost=CostModel(sub, opts.alpha1, opts.alpha2),
            alloc=Allocation(
                sub, comp0, opt0,
                replicas=unpack_replicas(rep_objs, rep_indptr),
            ),
            epoch=int(epoch),
        )
        _RESIDENT_SHARDS.put(key, res)

    ctx, cost, alloc = res.ctx, res.cost, res.alloc
    local_of = {int(g): li for li, g in enumerate(server_ids)}
    ge_c = ctx.global_comp_entries
    ge_o = ctx.global_opt_entries
    registry = MetricsRegistry() if opts.record else None
    out: list[dict] = []
    with use_registry(registry):
        for gi, target, allow_new in requests:
            li = local_of[int(gi)]
            comp_e = ctx.comp_entries_of(li)
            opt_e = ctx.opt_entries_of(li)
            comp_before = alloc.comp_local[comp_e]  # fancy-index copies
            opt_before = alloc.opt_local[opt_e]
            reps_before = set(alloc.replicas[li])
            achieved = absorb_extra_workload(
                alloc,
                cost,
                li,
                float(target),
                allow_new_replicas=bool(allow_new),
                allow_swap=bool(allow_swap),
                kernel=kernel,
            )
            comp_after = alloc.comp_local[comp_e]
            opt_after = alloc.opt_local[opt_e]
            added = sorted(alloc.replicas[li] - reps_before)
            removed = sorted(reps_before - alloc.replicas[li])
            out.append(
                {
                    "server": int(gi),
                    "achieved": float(achieved),
                    "comp_set": ge_c[comp_e[comp_after & ~comp_before]],
                    "comp_clear": ge_c[comp_e[comp_before & ~comp_after]],
                    "opt_set": ge_o[opt_e[opt_after & ~opt_before]],
                    "opt_clear": ge_o[opt_e[opt_before & ~opt_after]],
                    "replica_add": np.fromiter(
                        added, dtype=np.int64, count=len(added)
                    ),
                    "replica_remove": np.fromiter(
                        removed, dtype=np.int64, count=len(removed)
                    ),
                }
            )
    res.epoch = int(epoch) + 1
    return {
        "epoch": res.epoch,
        "frontier_read": frontier_read,
        "results": out,
        "snapshot": registry.snapshot() if registry is not None else None,
    }


def _entries_by_group(
    entry_group: np.ndarray, n_groups: int
) -> tuple[np.ndarray, np.ndarray]:
    """Stable ``(order, bounds)`` grouping entry ids by owning group.

    ``order[bounds[g]:bounds[g+1]]`` is group ``g``'s flat entry ids in
    ascending order — the same order ``restrict_to_servers`` selects
    them, which is what keeps a sync payload's mark slices aligned with
    the worker's shard-restricted context."""
    order = np.argsort(entry_group, kind="stable")
    bounds = np.searchsorted(entry_group[order], np.arange(n_groups + 1))
    return order, bounds


def _delta_nbytes(r: dict) -> float:
    """Actual array bytes one request's result delta ships upward."""
    return float(
        r["comp_set"].nbytes
        + r["comp_clear"].nbytes
        + r["opt_set"].nbytes
        + r["opt_clear"].nbytes
        + r["replica_add"].nbytes
        + r["replica_remove"].nbytes
    )


class _ShardedScatter:
    """Process-parallel absorption scatter for ``offload_repository``.

    Satisfies the :func:`~repro.core.offload.absorb_round_serial`
    contract — and its ``begin``/``finish`` lifecycle hooks — while
    running each round as **delta rounds over worker-resident shard
    state**: requests group per shard into one
    :func:`_absorb_shard_batch` submission (routed to the shard's
    pinned worker via ``pool.submit_to`` when the pool has it), workers
    validate the round epoch and ship back only the flipped marks, and
    the parent applies the returned deltas in **plan order**, so the
    mutation sequence the order-sensitive gather observes matches the
    serial reference exactly.

    Parameters
    ----------
    groups:
        The shard plan (ascending server ids per group, together
        covering every server).  Defaults to one server per shard —
        the standalone configuration the property harness drives.
    sync_mode:
        ``"delta"`` (resident fast path, the default) or ``"full"``
        (ship the full shard state with every batch — the PR-8-shaped
        baseline the delta/full byte accounting is measured against).
    resync_every:
        Force a full sync on every Nth batch per shard (defaults from
        ``REPRO_OFFLOAD_RESYNC_EVERY``); exercises the epoch-mismatch
        recovery path deterministically.

    Transport accounting: :attr:`rounds_bytes` records, per round,
    the actual bytes shipped (``delta_bytes``) next to what the
    per-request full-state protocol would have shipped
    (``full_bytes``), and ``finish`` publishes the
    ``shard.N.delta_bytes`` / ``shard.N.resyncs`` /
    ``offload.batched_submissions`` / ``shm.frontier_reads`` gauges.
    """

    def __init__(
        self,
        pool: ShardPool,
        payload: tuple,
        model: SystemModel,
        opts: _ShardOptions,
        *,
        groups: tuple[tuple[int, ...], ...] | None = None,
        sync_mode: str = "delta",
        resync_every: int | None = None,
    ):
        if sync_mode not in ("delta", "full"):
            raise ValueError(
                f'sync_mode must be "delta" or "full", got {sync_mode!r}'
            )
        self._pool = pool
        self._payload = payload
        self._opts = opts
        if groups is None:
            groups = tuple((i,) for i in range(model.n_servers))
        self._groups = tuple(tuple(int(i) for i in g) for g in groups)
        self._sync_mode = sync_mode
        if resync_every is None:
            resync_every = env_positive_int(
                "REPRO_OFFLOAD_RESYNC_EVERY", default=None
            )
        self._resync_every = resync_every
        #: session keying worker-resident state; when the driver seeded
        #: residency through the fan-out this matches ``opts.session``
        #: and shards start synced at epoch 0.
        self._session = (
            opts.session
            if opts.session is not None
            else f"scatter-{os.getpid()}-{next(_SESSION_SEQ)}"
        )
        self._ctx = EvalContext.for_model(model)
        shard_of = np.full(model.n_servers, -1, dtype=np.intp)
        for g, grp in enumerate(self._groups):
            shard_of[list(grp)] = g
        self._shard_of = shard_of
        self._comp_order, self._comp_bounds = _entries_by_group(
            shard_of[self._ctx.comp_server], len(self._groups)
        )
        self._opt_order, self._opt_bounds = _entries_by_group(
            shard_of[self._ctx.opt_server], len(self._groups)
        )
        n = len(self._groups)
        self._epochs = [0] * n
        self._synced = [opts.session is not None] * n
        self._batches = [0] * n
        self._delta_bytes = [0.0] * n
        self._resyncs = [0] * n
        self._submissions = 0
        self._frontier_reads = 0
        self._total_delta = 0.0
        self._total_full = 0.0
        #: per-round ``{"delta_bytes", "full_bytes"}`` records (the
        #: end-to-end bench persists these into BENCH json).
        self.rounds_bytes: list[dict[str, float]] = []
        self._frontier: ShmArena | None = None
        self._f_comp: np.ndarray | None = None
        self._f_opt: np.ndarray | None = None
        self._began = False
        self._finished = False

    # -- lifecycle (driven by ``offload_repository``) -------------------
    def begin(self, alloc: Allocation) -> None:
        """Create the shm mark frontier over the negotiation's marks."""
        if self._began:
            return
        self._began = True
        if self._opts.use_shm:
            self._frontier = ShmArena.create(
                {"comp_local": alloc.comp_local, "opt_local": alloc.opt_local},
                owner=True,
            )
            self._f_comp = self._frontier.get("comp_local", writeable=True)
            self._f_opt = self._frontier.get("opt_local", writeable=True)

    def finish(self) -> None:
        """Destroy the frontier and publish gauges (idempotent; runs on
        every ``offload_repository`` exit path, exceptions included)."""
        if self._finished:
            return
        self._finished = True
        self._f_comp = None
        self._f_opt = None
        if self._frontier is not None:
            self._frontier.destroy()
            self._frontier = None
        reg = obs.get_registry()
        if reg.enabled:
            for g in range(len(self._groups)):
                reg.gauge(f"shard.{g}.delta_bytes", self._delta_bytes[g])
                reg.gauge(f"shard.{g}.resyncs", float(self._resyncs[g]))
            reg.gauge("offload.batched_submissions", float(self._submissions))
            reg.gauge("shm.frontier_reads", float(self._frontier_reads))
            reg.gauge("offload.delta_bytes", self._total_delta)
            reg.gauge("offload.full_bytes", self._total_full)

    # -- wire helpers ---------------------------------------------------
    def _needs_sync(self, g: int) -> bool:
        if self._sync_mode == "full" or not self._synced[g]:
            return True
        every = self._resync_every
        return every is not None and self._batches[g] % every == 0

    def _sync_payload(self, g: int, alloc: Allocation) -> tuple[tuple, float]:
        """The shard's full current state, plus its shipped byte count."""
        grp = self._groups[g]
        rep_objs, rep_indptr = pack_replicas([alloc.replicas[i] for i in grp])
        if self._frontier is not None:
            # marks ride the shared frontier — only the CSR travels
            payload = ("frontier", self._frontier.handle, rep_objs, rep_indptr)
            nbytes = float(rep_objs.nbytes + rep_indptr.nbytes)
        else:
            comp_idx = self._comp_order[
                self._comp_bounds[g] : self._comp_bounds[g + 1]
            ]
            opt_idx = self._opt_order[
                self._opt_bounds[g] : self._opt_bounds[g + 1]
            ]
            comp_state = alloc.comp_local[comp_idx]
            opt_state = alloc.opt_local[opt_idx]
            payload = ("state", comp_state, opt_state, rep_objs, rep_indptr)
            nbytes = float(
                comp_state.nbytes
                + opt_state.nbytes
                + rep_objs.nbytes
                + rep_indptr.nbytes
            )
        return payload, nbytes

    def _submit(
        self,
        g: int,
        reqs: list[tuple[int, float, bool]],
        allow_swap: bool,
        kernel: str,
        sync: tuple | None,
    ):
        self._submissions += 1
        args = (
            self._payload,
            self._opts,
            self._session,
            int(g),
            self._groups[g],
            int(self._epochs[g]),
            reqs,
            bool(allow_swap),
            str(kernel),
            sync,
        )
        submit_to = getattr(self._pool, "submit_to", None)
        if submit_to is not None:
            return submit_to(g, _absorb_shard_batch, *args)
        return self._pool.submit(_absorb_shard_batch, *args)

    # -- the round ------------------------------------------------------
    def __call__(
        self,
        alloc: Allocation,
        cost: CostModel,
        requests: list[tuple[int, float, bool]],
        *,
        allow_swap: bool = True,
        kernel: str = "batched",
    ) -> dict[int, float]:
        self.begin(alloc)  # no-op when offload_repository already did
        by_shard: dict[int, list[tuple[int, float, bool]]] = {}
        for i, req, allow_new in requests:
            g = int(self._shard_of[i])
            by_shard.setdefault(g, []).append(
                (int(i), float(req), bool(allow_new))
            )
        round_delta = 0.0
        round_full = 0.0
        jobs = []
        for g, reqs in sorted(by_shard.items()):
            sync = None
            if self._needs_sync(g):
                sync, sent = self._sync_payload(g, alloc)
                self._resyncs[g] += 1
                self._delta_bytes[g] += sent
                round_delta += sent
            jobs.append((g, self._submit(g, reqs, allow_swap, kernel, sync)))

        reg = obs.get_registry()
        by_server: dict[int, dict] = {}
        for g, future in jobs:
            res = future.result()
            if res.get("resync"):
                # stale/missing resident state — re-ship the shard
                sync, sent = self._sync_payload(g, alloc)
                self._resyncs[g] += 1
                self._delta_bytes[g] += sent
                round_delta += sent
                res = self._submit(
                    g, by_shard[g], allow_swap, kernel, sync
                ).result()
                if res.get("resync"):  # pragma: no cover - protocol bug
                    raise RuntimeError(
                        f"shard {g} refused a sync payload (epoch "
                        f"{self._epochs[g]})"
                    )
            self._epochs[g] = int(res["epoch"])
            self._synced[g] = True
            self._batches[g] += 1
            self._frontier_reads += int(bool(res["frontier_read"]))
            for r in res["results"]:
                by_server[r["server"]] = r
                nb = _delta_nbytes(r)
                self._delta_bytes[g] += nb
                round_delta += nb
            if res["snapshot"] is not None and reg.enabled:
                reg.merge_snapshot(res["snapshot"])

        # Apply in plan order — the serial reference's mutation sequence.
        achieved: dict[int, float] = {}
        for i, req, allow_new in requests:
            r = by_server[i]
            reps_before = len(alloc.replicas[i])
            alloc.apply_server_delta(
                i,
                r["comp_set"],
                r["comp_clear"],
                r["opt_set"],
                r["opt_clear"],
                r["replica_add"],
                r["replica_remove"],
            )
            if self._f_comp is not None:
                self._f_comp[r["comp_set"]] = True
                self._f_comp[r["comp_clear"]] = False
                self._f_opt[r["opt_set"]] = True
                self._f_opt[r["opt_clear"]] = False
            achieved[i] = r["achieved"]
            # What the pre-resident protocol would have shipped for this
            # request: full mark slices + replicas down, mark deltas +
            # full replicas back.
            mark_delta = (
                _delta_nbytes(r)
                - r["replica_add"].nbytes
                - r["replica_remove"].nbytes
            )
            round_full += float(
                len(self._ctx.comp_entries_of(i))
                + len(self._ctx.opt_entries_of(i))
                + 8 * reps_before
                + mark_delta
                + 8 * len(alloc.replicas[i])
            )
        self._total_delta += round_delta
        self._total_full += round_full
        self.rounds_bytes.append(
            {"delta_bytes": round_delta, "full_bytes": round_full}
        )
        return achieved


# ----------------------------------------------------------------------
# parent side: fan out, reconcile, replay the global phases
# ----------------------------------------------------------------------
def _gather_shard_results(futures: list) -> list[_ShardResult]:
    """Collect every fan-out result, releasing arenas if any shard failed.

    Waits on *all* futures even after a failure: a successful shard may
    have created a worker-side result arena whose ownership only
    transfers to the parent on load, so bailing out at the first
    exception would strand ``/dev/shm`` segments for the pool's
    lifetime.  On failure, every successfully returned result is
    adopted-and-destroyed before the first exception re-raises.
    """
    results: list[_ShardResult] = []
    first_exc: BaseException | None = None
    for f in futures:
        try:
            results.append(f.result())
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            if first_exc is None:
                first_exc = exc
    if first_exc is not None:
        for r in results:
            arena = r.load_shm()
            r.release_arrays()
            if arena is not None:
                arena.destroy()
        raise first_exc
    return results


def run_sharded_policy(
    model: SystemModel,
    alpha1: float = 2.0,
    alpha2: float = 1.0,
    optional_policy: str = "all",
    offload_config: OffloadConfig | None = None,
    shards: int | None = None,
    pool: ShardPool | None = None,
    shm: bool | None = None,
) -> "PolicyResult":
    """The full policy pipeline, sharded over a worker pool.

    Bit-identical to ``RepositoryReplicationPolicy(kernel="batched")``
    on allocation, objectives, stats, constraint report and phase list
    — see the module docstring for why.

    Parameters
    ----------
    shards:
        Group count; resolved via :func:`resolve_shards` (explicit →
        ``REPRO_SHARDS`` → ``min(n_servers, cpu_count)``).
    pool:
        Injected :class:`ShardPool`; defaults to this module's private
        persistent :func:`default_pool`.  Pass
        :class:`InlineShardPool` to run serially in-process.
    shm:
        Shared-memory transport override, resolved via
        :func:`repro.core.shm.resolve_shm` (explicit → ``REPRO_SHM`` →
        available).  Ignored (off) for inline pools — there is no
        process boundary to cross.
    """
    from repro.core.policy import PolicyResult

    if getattr(model, "n_streams", 2) > 2:
        raise NotImplementedError(
            "the sharded kernel supports the k=2 topology only; run "
            'kernel="batched" or "scalar" for k-stream replica meshes '
            "(sharded k>2 is a planned follow-up)"
        )
    reg = obs.get_registry()
    cost = CostModel(model, alpha1, alpha2)
    n_shards = resolve_shards(shards, n_servers=model.n_servers)
    groups = plan_shards(model, n_shards)
    if pool is None:
        pool = default_pool(len(groups))
    inline = bool(getattr(pool, "inline", False))
    use_shm = False if inline else resolve_shm(shm)
    pickle_bytes_avoided = 0.0
    if inline:
        payload: tuple = ("model", model)
    elif use_shm:
        digest, arena = _model_arena(model)
        payload = (
            "shm",
            "shm:" + digest,
            arena.handle,
            pickle.dumps(model.repository, protocol=pickle.HIGHEST_PROTOCOL),
        )
        pickle_bytes_avoided += float(arena.nbytes)
    else:
        blob = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
        payload = ("blob", "blob:" + hashlib.sha256(blob).hexdigest(), blob)
    opts = _ShardOptions(
        alpha1=alpha1,
        alpha2=alpha2,
        optional_policy=optional_policy,
        record=reg.enabled,
        use_shm=use_shm,
        session=f"run-{os.getpid()}-{next(_SESSION_SEQ)}",
    )

    submit_to = getattr(pool, "submit_to", None)
    spans: dict[str, obs.SpanRecord] = {}
    with reg.span("policy"):
        with reg.span("shard-fanout") as fan:
            spans["shard-fanout"] = fan
            # Pin shard g to worker g when the pool supports routing, so
            # the residency each fan-out task seeds is the same state
            # the off-loading delta rounds will find.
            if submit_to is not None:
                futures = [
                    submit_to(g, _run_shard, payload, group, opts, g)
                    for g, group in enumerate(groups)
                ]
            else:
                futures = [
                    pool.submit(_run_shard, payload, group, opts, g)
                    for g, group in enumerate(groups)
                ]
            results = _gather_shard_results(futures)

        ne_c = len(model.comp_objects)
        ne_o = len(model.opt_objects)
        comp_part = np.zeros(ne_c, dtype=bool)
        opt_part = np.zeros(ne_o, dtype=bool)
        comp_fin = np.zeros(ne_c, dtype=bool)
        opt_fin = np.zeros(ne_o, dtype=bool)
        replicas: list[set[int] | None] = [None] * model.n_servers
        result_arenas: list[ShmArena] = []
        for r in results:
            arena = r.load_shm()
            if arena is not None:
                arena.unlink()  # name gone now; memory lives until close
                result_arenas.append(arena)
                pickle_bytes_avoided += float(arena.nbytes)
            comp_part[r.comp_partition_idx] = True
            opt_part[r.opt_partition_idx] = True
            comp_fin[r.comp_final_idx] = True
            opt_fin[r.opt_final_idx] = True
            indptr = r.replica_indptr
            objs = r.replica_objects
            for li, gi in enumerate(r.server_ids):
                replicas[gi] = set(
                    objs[int(indptr[li]) : int(indptr[li + 1])].tolist()
                )
            r.release_arrays()
        for arena in result_arenas:
            arena.close()
        assert all(r is not None for r in replicas), "shard plan missed a server"

        unconstrained_d = cost.D(Allocation(model, comp_part, opt_part))
        phases: list[str] = ["partition"]

        # Stats merge in global server order — the reference loop's
        # accumulation sequence, so float partial sums match bitwise.
        storage_stats = StorageRestorationStats()
        if any(r.storage_ran for r in results):
            phases.append("storage-restoration")
            by_server = {i: s for r in results for i, s in r.storage_stats}
            for i in sorted(by_server):
                storage_stats.merge(by_server[i])

        processing_stats = ProcessingRestorationStats()
        if any(r.processing_ran for r in results):
            phases.append("processing-restoration")
            by_server = {i: s for r in results for i, s in r.processing_stats}
            for i in sorted(by_server):
                processing_stats.merge(by_server[i])

        alloc = Allocation(model, comp_fin, opt_fin, replicas=replicas)
        report = evaluate_constraints(alloc)

        # OFF_LOADING's repository-side bookkeeping (NewReq shares, L3
        # demotion, message counts) negotiates against the *global*
        # Eq. 9 frontier, so it replays in the parent — but each round's
        # per-server absorptions are independent, so they scatter back
        # to the pool.
        offload_outcome: OffloadOutcome | None = None
        if not report.repo_ok:
            scatter = _ShardedScatter(
                pool, payload, model, opts, groups=groups
            )
            with reg.span("off-loading") as sp:
                spans["off-loading"] = sp
                offload_outcome = offload_repository(
                    alloc,
                    cost,
                    offload_config or OffloadConfig(),
                    scatter=scatter,
                )
            offload_outcome.round_bytes = list(scatter.rounds_bytes)
            phases.append("off-loading")
            report = evaluate_constraints(alloc)

        objective = cost.D(alloc)

    phase_seconds: dict[str, float] = {}
    if reg.enabled:
        for idx, r in enumerate(results):
            reg.gauge(f"shard.{idx}.servers", float(len(r.server_ids)))
            reg.gauge(f"shard.{idx}.pages", float(r.n_pages))
            reg.gauge(f"shard.{idx}.entries", float(r.n_entries))
            reg.gauge(f"shard.{idx}.context_entries", float(r.n_entries))
            reg.gauge(f"shard.{idx}.seconds", r.seconds)
            if r.snapshot is not None:
                reg.merge_snapshot(r.snapshot)
        reg.gauge("shard.count", float(len(groups)))
        reg.gauge("policy.context_entries_full", float(ne_c + ne_o))
        reg.gauge(
            "shm.bytes_shared",
            float(sum(a.nbytes for a in _PARENT_ARENAS.values())),
        )
        reg.gauge("shard.pickle_bytes_avoided", pickle_bytes_avoided)
        # Per-phase wall clock: the slowest shard bounds each fanned-out
        # phase; the reconcile-side phases time their own spans.
        for name in ("partition", "storage-restoration", "processing-restoration"):
            worst = max(
                (r.phase_seconds.get(name, 0.0) for r in results), default=0.0
            )
            if name in phases or name == "partition":
                phase_seconds[name] = worst
        phase_seconds["shard-fanout"] = spans["shard-fanout"].seconds
        if "off-loading" in spans:
            phase_seconds["off-loading"] = spans["off-loading"].seconds
        reg.count("policy.runs")
        reg.count("policy.kernel.sharded")
        reg.gauge("policy.objective", objective)
        reg.gauge("policy.unconstrained_objective", unconstrained_d)
        reg.gauge("policy.feasible", float(report.ok))
        reg.gauge("policy.phases_run", float(len(phases)))

    return PolicyResult(
        allocation=alloc,
        objective=objective,
        constraints=report,
        storage_stats=storage_stats,
        processing_stats=processing_stats,
        offload_outcome=offload_outcome,
        unconstrained_objective=unconstrained_d,
        phases_run=phases,
        phase_seconds=phase_seconds,
    )

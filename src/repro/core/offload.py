"""OFF_LOADING_REPOSITORY — the distributed negotiation of Section 4.2.

After every local server has fixed its allocation, each sends the
repository a **status message** carrying

* ``Space(S_i)`` — free storage,
* ``P(S_i)``     — spare processing capacity, and
* ``P(S_i, R)``  — the repository workload its assignment imposes.

If the repository's total estimated workload ``P(R) = Σ P(S_i, R)``
exceeds ``C(R)`` (Eq. 9), the repository pushes the excess back to the
local servers in rounds.  Servers are classed

* ``L1`` — free storage **and** free processing capacity,
* ``L2`` — no storage, but free processing capacity,
* ``L3`` — neither (excluded).

The excess is split proportionally to spare capacity: entirely within
``L1`` if it fits there, otherwise ``L1`` servers take all their spare
capacity and ``L2`` absorbs the remainder proportionally.  A server that
cannot achieve its requested share reports what it managed and moves to
``L3``; the loop repeats until Eq. 9 holds or no absorbing server
remains ("CONSTRAINT CAN NOT BE RESTORED").

Server-side absorption marks currently-remote ``(W_j, M_k)`` downloads
local, choosing the pairs whose move costs the objective least per unit
of workload shed — the mirror image of processing restoration.  ``L1``
servers may create new replicas (bounded by free space); ``L2`` servers
first exploit objects that are *stored but marked remote*, then (the
paper's last resort) may **swap**: deallocate stored objects whose local
marks carry little workload to make room for objects that would shed
more.

This module implements the protocol as plain function calls;
:mod:`repro.network` wraps the same primitives in actual message-passing
actors with message accounting.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.core.allocation import Allocation, ReverseIndex
from repro.core.constraints import (
    local_processing_load,
    repository_load,
    repository_load_by_server,
    storage_used,
)
from repro.core.cost_model import CostModel
from repro.core.context import engine_kernel
from repro.core.partition import Kernel, resolve_kernel
from repro.obs.registry import get_registry

__all__ = [
    "OffloadConfig",
    "OffloadOutcome",
    "ServerStatus",
    "compute_server_status",
    "compute_all_server_statuses",
    "absorb_extra_workload",
    "absorb_round_serial",
    "plan_offload_round",
    "offload_repository",
]

_TOL = 1e-9


@dataclass(frozen=True)
class ServerStatus:
    """Content of a Section 4.2 status message."""

    server_id: int
    free_space: float
    """``Space(S_i)`` — Eq. 10 slack in bytes."""
    free_capacity: float
    """``P(S_i)`` — Eq. 8 slack in requests/second."""
    repo_share: float
    """``P(S_i, R)`` — repository workload imposed by this server."""

    @property
    def classification(self) -> str:
        """``"L1"``, ``"L2"`` or ``"L3"`` per the paper's partition."""
        if self.free_capacity > _TOL and self.free_space > _TOL:
            return "L1"
        if self.free_capacity > _TOL:
            return "L2"
        return "L3"


def compute_server_status(alloc: Allocation, server_id: int) -> ServerStatus:
    """Build the status message a local server would send."""
    m = alloc.model
    storage = storage_used(alloc)[server_id]
    load = local_processing_load(alloc)[server_id]
    repo_share = repository_load_by_server(alloc)[server_id]
    cap = m.server_capacity[server_id]
    free_cap = np.inf if np.isinf(cap) else max(0.0, float(cap - load))
    return ServerStatus(
        server_id=server_id,
        free_space=max(0.0, float(m.server_storage[server_id] - storage)),
        free_capacity=free_cap,
        repo_share=float(repo_share),
    )


def compute_all_server_statuses(alloc: Allocation) -> list[ServerStatus]:
    """Status messages for every server from one pass over the allocation.

    Each per-server constraint array (``storage_used``,
    ``local_processing_load``, ``repository_load_by_server``) is computed
    once and sliced, instead of once per server as mapping
    :func:`compute_server_status` over ``range(n_servers)`` would —
    identical values, ``O(S)`` fewer full-allocation scans per round.
    """
    m = alloc.model
    storage = storage_used(alloc)
    load = local_processing_load(alloc)
    repo_share = repository_load_by_server(alloc)
    out: list[ServerStatus] = []
    for i in range(m.n_servers):
        cap = m.server_capacity[i]
        free_cap = np.inf if np.isinf(cap) else max(0.0, float(cap - load[i]))
        out.append(
            ServerStatus(
                server_id=i,
                free_space=max(0.0, float(m.server_storage[i] - storage[i])),
                free_capacity=free_cap,
                repo_share=float(repo_share[i]),
            )
        )
    return out


def plan_offload_round(
    statuses: list[ServerStatus],
    repo_capacity: float,
    demoted: frozenset[int] | set[int] = frozenset(),
) -> dict[int, float] | None:
    """One iteration of the repository-side WHILE loop.

    ``statuses`` must cover *every* server (their ``repo_share`` all count
    toward ``P(R)``); servers in ``demoted`` are treated as ``L3``
    regardless of their raw slack (they fell short in an earlier round).

    Returns the ``NewReq(S_i)`` assignment, or ``None`` when both ``L1``
    and ``L2`` are empty (the constraint cannot be restored).
    """
    total = sum(s.repo_share for s in statuses)
    excess = total - repo_capacity
    if excess <= _TOL:
        return {}
    eligible = [s for s in statuses if s.server_id not in demoted]
    l1 = [s for s in eligible if s.classification == "L1"]
    l2 = [s for s in eligible if s.classification == "L2"]
    if not l1 and not l2:
        return None
    p_l1 = sum(s.free_capacity for s in l1)
    new_req: dict[int, float] = {}
    if excess <= p_l1 and l1:
        new_req.update(_proportional_shares(l1, excess))
        return new_req
    for s in l1:
        new_req[s.server_id] = s.free_capacity
    p_l2 = sum(s.free_capacity for s in l2)
    if l2 and p_l2 > 0:
        remainder = excess - p_l1
        new_req.update(_proportional_shares(l2, min(remainder, p_l2)))
    return new_req


def _proportional_shares(
    servers: list[ServerStatus], amount: float
) -> dict[int, float]:
    """Split ``amount`` across servers proportionally to spare capacity.

    Servers with *infinite* spare capacity (Table 1 leaves ``C(S_i)``
    unconstrained in some experiments) share the amount equally — a
    proportional split over infinities is undefined.
    """
    infinite = [s for s in servers if np.isinf(s.free_capacity)]
    if infinite:
        share = amount / len(infinite)
        return {s.server_id: share for s in infinite}
    total = sum(s.free_capacity for s in servers)
    if total <= 0:
        return {}
    return {s.server_id: s.free_capacity * amount / total for s in servers}


# ----------------------------------------------------------------------
# server-side absorption
# ----------------------------------------------------------------------
def _candidate_workload(alloc: Allocation, kind: str, e: int) -> float:
    ctx = alloc.ctx
    if kind == "comp":
        return float(ctx.comp_freq[e])
    return float(ctx.opt_freq_weight[e])


def _try_make_room(
    alloc: Allocation,
    server_id: int,
    need: float,
    gain: float,
    local_bytes: np.ndarray,
    remote_bytes: np.ndarray,
    allow_swap: bool,
) -> tuple[bool, list[float], list[int], list[int], list[int]]:
    """Free ``need`` bytes by deallocating stored objects whose marks
    shed less workload than ``gain`` would add (net positive trade).

    Shared by the scalar and batched absorption kernels — the victim
    ranking (``victims.sort()`` over ``(w_lost/size, k, size, w_lost)``
    tuples) is fully deterministic, so both paths choose identical
    victims.  Returns ``(ok, freed_sizes, flipped_comp_entries,
    flipped_opt_entries, flipped_pages)``; on failure nothing is
    mutated.
    """
    m = alloc.model
    if not allow_swap:
        return False, [], [], [], []
    # cached per-model reverse index (previously threaded in by callers)
    rev = ReverseIndex.for_model(m)
    ctx = alloc.ctx
    victims: list[tuple[float, int, float, float]] = []
    for k in alloc.replicas[server_id]:
        k = int(k)
        size = float(m.sizes[k])
        w_lost = 0.0
        marks = alloc.mark_count(server_id, k)
        if marks:
            # workload carried by this object's local marks
            comp_e, opt_e = rev.entries_for(server_id, k)
            for e2 in comp_e:
                if alloc.comp_local[e2]:
                    w_lost += float(ctx.comp_freq[e2])
            for e2 in opt_e:
                if alloc.opt_local[e2]:
                    w_lost += _candidate_workload(alloc, "opt", int(e2))
        victims.append((w_lost / size, k, size, w_lost))
    victims.sort()
    freed, lost, chosen = 0.0, 0.0, []
    for _, k, size, w_lost in victims:
        if freed >= need:
            break
        chosen.append((k, size, w_lost))
        freed += size
        lost += w_lost
    if freed < need or lost >= gain:
        return False, [], [], [], []
    freed_sizes: list[float] = []
    flip_comp: list[int] = []
    flip_opt: list[int] = []
    flip_pages: list[int] = []
    for k, size, _ in chosen:
        comp_e, opt_e = rev.entries_for(server_id, k)
        for e2 in comp_e:
            if alloc.comp_local[e2]:
                j = int(m.comp_pages[e2])
                alloc.set_comp_local(e2, False)
                sz = float(m.sizes[k])
                local_bytes[j] -= sz
                remote_bytes[j] += sz
                flip_comp.append(int(e2))
                flip_pages.append(j)
        for e2 in opt_e:
            if alloc.opt_local[e2]:
                alloc.set_opt_local(e2, False)
                flip_opt.append(int(e2))
        alloc.replicas[server_id].discard(k)
        freed_sizes.append(size)
    return True, freed_sizes, flip_comp, flip_opt, flip_pages


def absorb_extra_workload(
    alloc: Allocation,
    cost: CostModel,
    server_id: int,
    target: float,
    allow_new_replicas: bool = True,
    allow_swap: bool = True,
    kernel: Kernel = "batched",
) -> float:
    """Shift up to ``target`` req/s of repository workload onto ``server_id``.

    Marks remote ``(page, object)`` downloads local in order of least
    objective damage per unit workload, honouring the server's remaining
    storage (Eq. 10) and processing (Eq. 8) slack.  Mutates ``alloc`` and
    returns the workload actually absorbed.

    Parameters
    ----------
    allow_new_replicas:
        ``False`` restricts candidates to objects already stored (the
        ``L2`` behaviour before swapping).
    allow_swap:
        Enable the paper's last-resort swap: deallocating stored objects
        whose marks carry less workload than a blocked candidate would
        add, when that trade is a net workload gain.
    kernel:
        ``"batched"`` (default) scores candidates with the vectorised
        engine of :mod:`repro.core.fast_restoration`; ``"scalar"`` keeps
        the reference lazy-heap loop.  Both produce bit-identical
        absorption sequences.
    """
    kernel = engine_kernel(resolve_kernel(kernel))
    if alloc.ctx.n_streams > 2:
        raise NotImplementedError(
            "OFF_LOADING absorption supports the k=2 topology only; "
            "k-stream off-loading is a planned follow-up (k>2 scenarios "
            "model the repository tier as uncapacitated)"
        )
    if kernel == "batched":
        # local import keeps the scalar path importable without NumPy
        # fanciness and avoids a module-level cycle
        from repro.core.fast_restoration import absorb_extra_workload_batched

        rescore: dict[str, int] = {}
        absorbed = absorb_extra_workload_batched(
            alloc,
            cost,
            server_id,
            target,
            allow_new_replicas=allow_new_replicas,
            allow_swap=allow_swap,
            counters=rescore,
        )
        reg = get_registry()
        if reg.enabled and rescore:
            reg.count("offload.rescore_batches", rescore.get("batches", 0))
            reg.count(
                "offload.rescored_candidates", rescore.get("candidates", 0)
            )
        return absorbed
    if target <= _TOL:
        return 0.0
    m = alloc.model
    cap = float(m.server_capacity[server_id])
    load = float(local_processing_load(alloc)[server_id])
    cpu_slack = np.inf if np.isinf(cap) else cap - load
    space = float(m.server_storage[server_id] - storage_used(alloc)[server_id])

    local_bytes = cost.local_mo_bytes(alloc)
    remote_bytes = cost.remote_mo_bytes(alloc)

    def page_time(j: int, lb: float, rb: float) -> float:
        return cost.page_time_from_bytes(j, lb, rb)

    def score(kind: str, e: int) -> float:
        w = _candidate_workload(alloc, kind, e)
        if w <= 0:
            return np.inf
        if kind == "comp":
            j = int(m.comp_pages[e])
            size = float(m.sizes[m.comp_objects[e]])
            old = page_time(j, local_bytes[j], remote_bytes[j])
            new = page_time(j, local_bytes[j] + size, remote_bytes[j] - size)
            raw = cost.alpha1 * m.frequencies[j] * (new - old)
        else:
            raw = cost.optional_entry_delta(e, to_local=True)
        return raw / w

    ctx = alloc.ctx
    counter = itertools.count()
    heap: list[tuple[float, int, tuple[str, int]]] = []
    for e in ((~alloc.comp_local) & (ctx.comp_server == server_id)).nonzero()[0]:
        heapq.heappush(heap, (score("comp", int(e)), next(counter), ("comp", int(e))))
    for e in ((~alloc.opt_local) & (ctx.opt_server == server_id)).nonzero()[0]:
        heapq.heappush(heap, (score("opt", int(e)), next(counter), ("opt", int(e))))

    def try_make_room(need: float, gain: float) -> bool:
        """Free ``need`` bytes by deallocating stored objects whose marks
        shed less workload than ``gain`` would add (net positive trade)."""
        nonlocal space
        ok, freed_sizes, _, _, _ = _try_make_room(
            alloc, server_id, need, gain,
            local_bytes, remote_bytes, allow_swap,
        )
        for size in freed_sizes:
            space += size
        return ok

    absorbed = 0.0
    deferred: list[tuple[float, int, tuple[str, int]]] = []
    while heap and absorbed < target - _TOL and cpu_slack > _TOL:
        s, _, (kind, e) = heapq.heappop(heap)
        is_local = alloc.comp_local[e] if kind == "comp" else alloc.opt_local[e]
        if is_local:
            continue
        fresh = score(kind, e)
        if fresh > s + _TOL:
            heapq.heappush(heap, (fresh, next(counter), (kind, e)))
            continue
        w = _candidate_workload(alloc, kind, e)
        if w <= 0 or w > cpu_slack + _TOL:
            continue
        k = int(m.comp_objects[e] if kind == "comp" else m.opt_objects[e])
        stored = k in alloc.replicas[server_id]
        if not stored:
            size = float(m.sizes[k])
            if not allow_new_replicas:
                continue
            if size > space + _TOL:
                # L2-style swap: make room if the trade gains workload
                remaining = target - absorbed
                if not try_make_room(size - space, min(w, remaining)):
                    deferred.append((s, next(counter), (kind, e)))
                    continue
            space -= size
        if kind == "comp":
            j = int(m.comp_pages[e])
            size_k = float(m.sizes[k])
            alloc.set_comp_local(e, True)
            local_bytes[j] += size_k
            remote_bytes[j] -= size_k
            # sibling candidates of this page are now stale; they will be
            # revalidated on pop (scores only shift, keys stay valid)
        else:
            alloc.set_opt_local(e, True)
        absorbed += w
        cpu_slack -= w
    return absorbed


def absorb_round_serial(
    alloc: Allocation,
    cost: CostModel,
    requests: list[tuple[int, float, bool]],
    *,
    allow_swap: bool = True,
    kernel: Kernel = "batched",
) -> dict[int, float]:
    """Default (serial) scatter: absorb each round request in plan order.

    This is the **scatter** half of the off-loading round's
    scatter/gather split.  ``requests`` holds one
    ``(server_id, new_req, allow_new_replicas)`` triple per server the
    repository addressed this round; the scatter must mutate ``alloc``
    to the post-absorption state of every listed server and return the
    workload each actually achieved.

    The contract a replacement scatter (e.g. the process-parallel one in
    :mod:`repro.core.shard`) must honour: per-server absorptions are
    **independent** — a server appears at most once per round, and
    absorption at one server reads and writes only that server's pages,
    entries and replica set, so any execution order (or parallel
    execution) produces the same marks as this serial reference.  The
    round's order-sensitive bookkeeping (absorbed accumulation, L3
    demotion, the Eq. 9 load recompute) stays in
    :func:`offload_repository` — the gather side.
    """
    achieved: dict[int, float] = {}
    for server_id, req, allow_new in requests:
        achieved[server_id] = absorb_extra_workload(
            alloc,
            cost,
            server_id,
            req,
            allow_new_replicas=allow_new,
            allow_swap=allow_swap,
            kernel=kernel,
        )
    return achieved


# ----------------------------------------------------------------------
# repository-side loop
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OffloadConfig:
    """Tunables for the off-loading negotiation."""

    max_rounds: int = 50
    """Safety bound on negotiation rounds (the paper iterates until the
    constraint holds or L1 ∪ L2 empties; this guards pathological cases)."""
    allow_swap: bool = True
    """Enable the L2 swap fallback."""


@dataclass
class OffloadOutcome:
    """Result of a full off-loading negotiation."""

    restored: bool
    """Whether Eq. 9 holds at exit."""
    rounds: int
    messages: int
    """Status + NewReq + answer + END messages exchanged."""
    initial_repo_load: float
    final_repo_load: float
    absorbed_by_server: dict[int, float] = field(default_factory=dict)
    round_bytes: list[dict[str, float]] = field(
        default_factory=list, compare=False
    )
    """Per-round scatter transport accounting, filled by the sharded
    kernel: each entry holds ``delta_bytes`` (bytes actually shipped by
    the worker-resident delta protocol) and ``full_bytes`` (what the
    per-request full-state protocol would have shipped).  Empty for
    serial negotiations; excluded from equality — transport cost is not
    part of the negotiation outcome."""

    @property
    def total_absorbed(self) -> float:
        """Workload shifted off the repository (requests/second)."""
        return sum(self.absorbed_by_server.values())


def offload_repository(
    alloc: Allocation,
    cost: CostModel,
    config: OffloadConfig | None = None,
    capacity: float | None = None,
    kernel: Kernel = "batched",
    scatter=None,
) -> OffloadOutcome:
    """Run the OFF_LOADING_REPOSITORY protocol, mutating ``alloc``.

    Follows the paper's pseudocode: collect statuses, loop while
    ``P(R) > C(R)`` assigning ``NewReq`` shares to ``L1``/``L2`` servers,
    collect answers, recompute.  Servers that fall short are excluded
    (``L3``) from subsequent rounds.

    Parameters
    ----------
    capacity:
        Override for ``C(R)`` (defaults to the model's repository
        capacity).  Figure 3 sweeps this as a fraction of the workload
        the pre-offload allocation imposes.
    kernel:
        Candidate-scoring kernel forwarded to
        :func:`absorb_extra_workload` (``"batched"`` or ``"scalar"``).
    scatter:
        Absorption-round executor with the signature and contract of
        :func:`absorb_round_serial` (the default).  The sharded kernel
        injects a process-parallel scatter here; because per-server
        absorptions are independent, every conforming scatter yields
        bit-identical marks, and this function keeps all the
        order-sensitive gather bookkeeping either way.  A scatter may
        additionally expose ``begin(alloc)`` / ``finish()`` lifecycle
        hooks: ``begin`` runs once before the first round (after the
        nothing-to-do early return, so trivial negotiations never pay
        for scatter setup) and ``finish`` runs exactly once on every
        exit path — normal, early break, or an exception raised
        mid-round — so round-scoped resources (the sharded kernel's
        shared-memory mark frontier) are never leaked.
    """
    cfg = config or OffloadConfig()
    kernel = engine_kernel(resolve_kernel(kernel))
    m = alloc.model
    repo_cap = (
        m.repository.processing_capacity if capacity is None else float(capacity)
    )
    initial = repository_load(alloc)
    outcome = OffloadOutcome(
        restored=True,
        rounds=0,
        messages=m.n_servers,  # initial status messages
        initial_repo_load=float(initial),
        final_repo_load=float(initial),
    )
    if np.isinf(repo_cap) or initial <= repo_cap + _TOL:
        return outcome
    if alloc.ctx.n_streams > 2:
        raise NotImplementedError(
            "OFF_LOADING_REPOSITORY supports the k=2 topology only; "
            "give the k-stream replica mesh an uncapacitated repository "
            "(the negotiation protocol's k>2 form is a planned follow-up)"
        )

    reg = get_registry()
    absorb_round = absorb_round_serial if scatter is None else scatter
    begin = getattr(absorb_round, "begin", None)
    finish = getattr(absorb_round, "finish", None)
    demoted: set[int] = set()
    load = initial
    if begin is not None:
        begin(alloc)
    try:
        with reg.span("off-loading"):
            for _ in range(cfg.max_rounds):
                if load <= repo_cap + _TOL:
                    break
                statuses = compute_all_server_statuses(alloc)
                plan = plan_offload_round(statuses, repo_cap, demoted)
                if plan is None or not plan:
                    break
                outcome.rounds += 1
                outcome.messages += len(plan)  # NewReq messages
                # Scatter: each server appears at most once per round and
                # absorption at one server never changes another's
                # constraint slack, so the round-start statuses stay exact
                # for every request and the absorptions commute.
                requests = [
                    (i, req, statuses[i].free_space > _TOL)
                    for i, req in plan.items()
                ]
                achieved_by = absorb_round(
                    alloc,
                    cost,
                    requests,
                    allow_swap=cfg.allow_swap,
                    kernel=kernel,
                )
                # Gather: the order-sensitive bookkeeping, in plan order.
                for i, req in plan.items():
                    achieved = achieved_by[i]
                    outcome.absorbed_by_server[i] = (
                        outcome.absorbed_by_server.get(i, 0.0) + achieved
                    )
                    if achieved < req - _TOL:
                        demoted.add(i)  # joins L3 for subsequent rounds
                outcome.messages += len(plan)  # answers
                load = repository_load(alloc)
    finally:
        if finish is not None:
            finish()
    outcome.messages += m.n_servers  # Off_Loading_END broadcast
    outcome.final_repo_load = float(load)
    outcome.restored = bool(load <= repo_cap + _TOL)
    if reg.enabled:
        reg.count("offload.negotiations")
        reg.count("offload.rounds", outcome.rounds)
        reg.count("offload.messages", outcome.messages)
        reg.count("offload.absorbed_load", outcome.total_absorbed)
        reg.gauge("offload.restored", float(outcome.restored))
    return outcome

"""Vectorised implementation of the Section 3 cost model (Eq. 3-7).

For an allocation ``X``/``X'`` the model computes, per page ``W_j`` hosted
on server ``S_i``:

.. math::

    Time(S_i, W_j) &= Ovhd(S_i) + \\frac{Size(H_j) + \\sum_k X_{jk} Size(M_k)}{B(S_i)}

    Time(R, W_j)   &= Ovhd(R, S_i) + \\frac{\\sum_k (1 - X_{jk}) U_{jk} Size(M_k)}{B(R, S_i)}

    Time(W_j)      &= \\max\\{Time(S_i, W_j),\\ Time(R, W_j)\\}

(the two downloads proceed in parallel over persistent pipelined
connections), and the expected optional-object time of Eq. 6

.. math::

    Time(W_j, M) = f(W_j, M) \\sum_k U'_{jk} \\big[ X'_{jk} t^{loc}_k +
                   (1 - X'_{jk}) t^{rep}_k \\big]

where each optional download pays a fresh connection overhead.  The
composite objective (Eq. 7 with weights) is

.. math::

    D = \\alpha_1 \\underbrace{\\sum_j f(W_j) Time(W_j)}_{D_1} +
        \\alpha_2 \\underbrace{\\sum_j f(W_j) Time(W_j, M)}_{D_2}.

Note on units: the paper calls ``B`` a transfer rate yet multiplies it by
sizes; we store rates in bytes/second and divide (see
:mod:`repro.util.units`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.allocation import Allocation
from repro.core.context import EvalContext, ScalarViews
from repro.core.types import SystemModel

__all__ = ["PageTimes", "CostModel"]

# Backwards-compatible alias: the per-page plain-list views now live in
# repro.core.context (shared by every consumer, not private to CostModel).
_ScalarViews = ScalarViews


@dataclass(frozen=True)
class PageTimes:
    """Per-page time decomposition under an allocation.

    All arrays have length ``n_pages``.

    Attributes
    ----------
    local:
        ``Time(S_i, W_j)`` — the local pipelined stream (Eq. 3).
    remote:
        ``Time(R, W_j)`` — the repository stream (Eq. 4).
    page:
        ``Time(W_j) = max(local, remote)`` (Eq. 5).
    optional:
        ``Time(W_j, M)`` — expected optional-object time (Eq. 6).
    """

    local: np.ndarray
    remote: np.ndarray
    page: np.ndarray
    optional: np.ndarray


class CostModel:
    """Evaluates Eq. 3-7 for allocations over a fixed :class:`SystemModel`.

    Parameters
    ----------
    model:
        The system universe.
    alpha1, alpha2:
        The positive weights combining ``D1`` (page retrieval time) and
        ``D2`` (optional object time) into the scalar objective ``D``.
        Table 1 uses ``(2, 1)`` — page time matters more.
    """

    def __init__(self, model: SystemModel, alpha1: float = 2.0, alpha2: float = 1.0):
        if alpha1 <= 0 or alpha2 <= 0:
            raise ValueError(
                f"alpha weights must be positive, got ({alpha1}, {alpha2})"
            )
        self.model = model
        self.alpha1 = float(alpha1)
        self.alpha2 = float(alpha2)

        # All columns live in (and are shared through) the model's
        # EvalContext; the attributes below are aliases kept for the many
        # call sites that read them off the cost model.
        ctx = EvalContext.for_model(model)
        self.ctx = ctx
        #: per-page seconds-per-byte on the local / repository connection
        self.page_spb_local = ctx.page_spb_local
        self.page_spb_repo = ctx.page_spb_repo
        #: per-page connection overheads
        self.page_ovhd_local = ctx.page_ovhd_local
        self.page_ovhd_repo = ctx.page_ovhd_repo
        #: per-compulsory-entry object sizes (flat, aligned with comp_local)
        self.comp_sizes = ctx.comp_sizes
        #: per-optional-entry object sizes
        self.opt_sizes = ctx.opt_sizes
        #: per-optional-entry single-download times (Eq. 6): local vs repo
        self.opt_time_local = ctx.opt_time_local
        self.opt_time_repo = ctx.opt_time_repo
        #: expected weight of each optional entry: f(W_j)·scale·U'_jk
        self.opt_freq_weight = ctx.opt_freq_weight

    # ------------------------------------------------------------------
    # byte aggregation
    # ------------------------------------------------------------------
    def local_mo_bytes(self, alloc: Allocation) -> np.ndarray:
        """Per-page :math:`\\sum_k X_{jk} Size(M_k)`.

        ``np.bincount`` accumulates its weights sequentially in input
        order, exactly like the ``np.add.at`` scatter it replaces, so the
        totals are bit-identical — it is just several times faster.
        """
        m = self.model
        sel = alloc.comp_local
        return np.bincount(
            m.comp_pages[sel], weights=self.comp_sizes[sel], minlength=m.n_pages
        )

    def remote_mo_bytes(self, alloc: Allocation) -> np.ndarray:
        """Per-page :math:`\\sum_k (1-X_{jk}) U_{jk} Size(M_k)`."""
        m = self.model
        sel = ~alloc.comp_local
        return np.bincount(
            m.comp_pages[sel], weights=self.comp_sizes[sel], minlength=m.n_pages
        )

    # ------------------------------------------------------------------
    # Eq. 3-6
    # ------------------------------------------------------------------
    def stream_times(
        self, local_mo_bytes: np.ndarray, remote_mo_bytes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Eq. 3 and Eq. 4 from per-page byte totals."""
        m = self.model
        local = self.page_ovhd_local + self.page_spb_local * (
            m.html_sizes + local_mo_bytes
        )
        remote = self.page_ovhd_repo + self.page_spb_repo * remote_mo_bytes
        return local, remote

    def optional_times(self, alloc: Allocation) -> np.ndarray:
        """Eq. 6 per page: expected optional download time per view."""
        m = self.model
        per_entry = np.where(
            alloc.opt_local, self.opt_time_local, self.opt_time_repo
        )
        weighted = m.opt_probs * per_entry
        out = np.bincount(m.opt_pages, weights=weighted, minlength=m.n_pages)
        return out * m.optional_rate_scale

    def page_times(self, alloc: Allocation) -> PageTimes:
        """Full per-page decomposition (Eq. 3-6)."""
        local, remote = self.stream_times(
            self.local_mo_bytes(alloc), self.remote_mo_bytes(alloc)
        )
        page = np.maximum(local, remote)
        optional = self.optional_times(alloc)
        return PageTimes(local=local, remote=remote, page=page, optional=optional)

    # ------------------------------------------------------------------
    # Eq. 7
    # ------------------------------------------------------------------
    def D1(self, alloc: Allocation) -> float:
        """:math:`D_1 = \\sum_j f(W_j)\\,Time(W_j)`."""
        times = self.page_times(alloc)
        return float(np.dot(self.model.frequencies, times.page))

    def D2(self, alloc: Allocation) -> float:
        """:math:`D_2 = \\sum_j f(W_j)\\,Time(W_j, M)`."""
        times = self.optional_times(alloc)
        return float(np.dot(self.model.frequencies, times))

    def D(self, alloc: Allocation) -> float:
        """The weighted composite objective :math:`\\alpha_1 D_1 + \\alpha_2 D_2`."""
        times = self.page_times(alloc)
        d1 = float(np.dot(self.model.frequencies, times.page))
        d2 = float(np.dot(self.model.frequencies, times.optional))
        return self.alpha1 * d1 + self.alpha2 * d2

    def objective_from_times(self, times: PageTimes) -> float:
        """``D`` from an existing :class:`PageTimes` (avoids recomputation)."""
        d1 = float(np.dot(self.model.frequencies, times.page))
        d2 = float(np.dot(self.model.frequencies, times.optional))
        return self.alpha1 * d1 + self.alpha2 * d2

    # ------------------------------------------------------------------
    # scalar helpers used by the greedy loops
    # ------------------------------------------------------------------
    @property
    def scalars(self) -> ScalarViews:
        """Plain-Python per-page views for scalar-heavy greedy loops.

        NumPy scalar indexing costs ~1 microsecond per access; the greedy
        restoration loops evaluate millions of single-page times, so they
        read these plain ``list`` views instead (built once per model in
        the shared :class:`~repro.core.context.EvalContext`).
        """
        return self.ctx.scalars

    def page_time_from_bytes(
        self, page_id: int, local_mo_bytes: float, remote_mo_bytes: float
    ) -> float:
        """Eq. 5 for a single page given its stream byte totals."""
        s = self.scalars
        tl = s.ovhd_local[page_id] + s.spb_local[page_id] * (
            s.html[page_id] + local_mo_bytes
        )
        tr = s.ovhd_repo[page_id] + s.spb_repo[page_id] * remote_mo_bytes
        return tl if tl >= tr else tr

    def optional_entry_delta(self, entry: int, to_local: bool) -> float:
        """Change in ``alpha2 * D2`` from flipping one optional entry.

        Positive means the objective gets worse.
        """
        diff = self.opt_time_local[entry] - self.opt_time_repo[entry]
        signed = diff if to_local else -diff
        return self.alpha2 * self.opt_freq_weight[entry] * signed

    # ------------------------------------------------------------------
    # bulk (vectorised) counterparts used by the batched greedy kernels
    # ------------------------------------------------------------------
    def bulk_page_time_from_bytes(
        self,
        page_ids: np.ndarray,
        local_mo_bytes: np.ndarray,
        remote_mo_bytes: np.ndarray,
    ) -> np.ndarray:
        """Eq. 5 for many (page, byte-total) tuples at once.

        Bit-identical to mapping :meth:`page_time_from_bytes` over the
        inputs: the expression trees match term for term, and for the
        finite nonnegative stream times ``np.maximum`` picks the same
        value as the scalar ``tl if tl >= tr else tr`` branch.
        """
        tl = self.page_ovhd_local[page_ids] + self.page_spb_local[page_ids] * (
            self.model.html_sizes[page_ids] + local_mo_bytes
        )
        tr = (
            self.page_ovhd_repo[page_ids]
            + self.page_spb_repo[page_ids] * remote_mo_bytes
        )
        return np.maximum(tl, tr)

    def bulk_optional_entry_delta(
        self, entries: np.ndarray, to_local: bool
    ) -> np.ndarray:
        """Vectorised :meth:`optional_entry_delta` over many entries."""
        diff = self.opt_time_local[entries] - self.opt_time_repo[entries]
        signed = diff if to_local else -diff
        return self.alpha2 * self.opt_freq_weight[entries] * signed

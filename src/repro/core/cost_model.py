"""Vectorised implementation of the Section 3 cost model (Eq. 3-7).

For an allocation ``X``/``X'`` the model computes, per page ``W_j`` hosted
on server ``S_i``:

.. math::

    Time(S_i, W_j) &= Ovhd(S_i) + \\frac{Size(H_j) + \\sum_k X_{jk} Size(M_k)}{B(S_i)}

    Time(R, W_j)   &= Ovhd(R, S_i) + \\frac{\\sum_k (1 - X_{jk}) U_{jk} Size(M_k)}{B(R, S_i)}

    Time(W_j)      &= \\max\\{Time(S_i, W_j),\\ Time(R, W_j)\\}

(the two downloads proceed in parallel over persistent pipelined
connections), and the expected optional-object time of Eq. 6

.. math::

    Time(W_j, M) = f(W_j, M) \\sum_k U'_{jk} \\big[ X'_{jk} t^{loc}_k +
                   (1 - X'_{jk}) t^{rep}_k \\big]

where each optional download pays a fresh connection overhead.  The
composite objective (Eq. 7 with weights) is

.. math::

    D = \\alpha_1 \\underbrace{\\sum_j f(W_j) Time(W_j)}_{D_1} +
        \\alpha_2 \\underbrace{\\sum_j f(W_j) Time(W_j, M)}_{D_2}.

Note on units: the paper calls ``B`` a transfer rate yet multiplies it by
sizes; we store rates in bytes/second and divide (see
:mod:`repro.util.units`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.allocation import Allocation
from repro.core.context import EvalContext, ScalarViews
from repro.core.types import SystemModel

__all__ = ["PageTimes", "CostModel"]

# Backwards-compatible alias: the per-page plain-list views now live in
# repro.core.context (shared by every consumer, not private to CostModel).
_ScalarViews = ScalarViews


@dataclass(frozen=True)
class PageTimes:
    """Per-page time decomposition under an allocation.

    All arrays have length ``n_pages``.

    Attributes
    ----------
    local:
        ``Time(S_i, W_j)`` — the local pipelined stream (Eq. 3).
    remote:
        ``Time(R, W_j)`` — the repository stream (Eq. 4).  At k>2 this
        is the *binding* remote time (elementwise max over the remote
        streams), so ``page == max(local, remote)`` holds at every k.
    page:
        ``Time(W_j) = max(local, remote)`` (Eq. 5), generalized to the
        max over all k streams.
    optional:
        ``Time(W_j, M)`` — expected optional-object time (Eq. 6).
    by_stream:
        Per-remote-stream times, ``by_stream[r-1]`` being stream ``r``'s
        Eq. 4 analog.  ``None`` on the degenerate k=2 evaluation (where
        ``remote`` already is the single repository stream).
    """

    local: np.ndarray
    remote: np.ndarray
    page: np.ndarray
    optional: np.ndarray
    by_stream: tuple[np.ndarray, ...] | None = None


class CostModel:
    """Evaluates Eq. 3-7 for allocations over a fixed :class:`SystemModel`.

    Parameters
    ----------
    model:
        The system universe.
    alpha1, alpha2:
        The positive weights combining ``D1`` (page retrieval time) and
        ``D2`` (optional object time) into the scalar objective ``D``.
        Table 1 uses ``(2, 1)`` — page time matters more.
    """

    def __init__(self, model: SystemModel, alpha1: float = 2.0, alpha2: float = 1.0):
        if alpha1 <= 0 or alpha2 <= 0:
            raise ValueError(
                f"alpha weights must be positive, got ({alpha1}, {alpha2})"
            )
        self.model = model
        self.alpha1 = float(alpha1)
        self.alpha2 = float(alpha2)

        # All columns live in (and are shared through) the model's
        # EvalContext; the attributes below are aliases kept for the many
        # call sites that read them off the cost model.
        ctx = EvalContext.for_model(model)
        self.ctx = ctx
        #: per-page seconds-per-byte on the local / repository connection
        self.page_spb_local = ctx.page_spb_local
        self.page_spb_repo = ctx.page_spb_repo
        #: per-page connection overheads
        self.page_ovhd_local = ctx.page_ovhd_local
        self.page_ovhd_repo = ctx.page_ovhd_repo
        #: per-compulsory-entry object sizes (flat, aligned with comp_local)
        self.comp_sizes = ctx.comp_sizes
        #: per-optional-entry object sizes
        self.opt_sizes = ctx.opt_sizes
        #: per-optional-entry single-download times (Eq. 6): local vs repo
        self.opt_time_local = ctx.opt_time_local
        self.opt_time_repo = ctx.opt_time_repo
        #: best remote single-download time — IS ``opt_time_repo`` at
        #: k=2, the min over the k−1 remote streams otherwise
        self.opt_time_remote = ctx.opt_time_remote
        #: expected weight of each optional entry: f(W_j)·scale·U'_jk
        self.opt_freq_weight = ctx.opt_freq_weight
        #: number of parallel streams (2 = the paper's local/repo pair)
        self.n_streams = ctx.n_streams

    # ------------------------------------------------------------------
    # byte aggregation
    # ------------------------------------------------------------------
    def local_mo_bytes(self, alloc: Allocation) -> np.ndarray:
        """Per-page :math:`\\sum_k X_{jk} Size(M_k)`.

        ``np.bincount`` accumulates its weights sequentially in input
        order, exactly like the ``np.add.at`` scatter it replaces, so the
        totals are bit-identical — it is just several times faster.
        """
        m = self.model
        sel = alloc.comp_local
        return np.bincount(
            m.comp_pages[sel], weights=self.comp_sizes[sel], minlength=m.n_pages
        )

    def remote_mo_bytes(self, alloc: Allocation) -> np.ndarray:
        """Per-page :math:`\\sum_k (1-X_{jk}) U_{jk} Size(M_k)`."""
        m = self.model
        sel = ~alloc.comp_local
        return np.bincount(
            m.comp_pages[sel], weights=self.comp_sizes[sel], minlength=m.n_pages
        )

    def remote_mo_bytes_by_stream(
        self, alloc: Allocation
    ) -> tuple[np.ndarray, ...]:
        """Per-page remote byte totals split by owning stream.

        Element ``r-1`` is stream ``r``'s total.  At k=2 every remote
        entry is on the repository stream, so this is the one-element
        tuple ``(remote_mo_bytes(alloc),)`` computed identically.
        """
        m = self.model
        rem = ~alloc.comp_local
        if self.n_streams == 2:
            return (
                np.bincount(
                    m.comp_pages[rem],
                    weights=self.comp_sizes[rem],
                    minlength=m.n_pages,
                ),
            )
        return tuple(
            np.bincount(
                m.comp_pages[sel_r],
                weights=self.comp_sizes[sel_r],
                minlength=m.n_pages,
            )
            for r in range(1, self.n_streams)
            for sel_r in (rem & (alloc.comp_stream == r),)
        )

    # ------------------------------------------------------------------
    # Eq. 3-6
    # ------------------------------------------------------------------
    def stream_times(
        self, local_mo_bytes: np.ndarray, remote_mo_bytes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Eq. 3 and Eq. 4 from per-page byte totals."""
        m = self.model
        local = self.page_ovhd_local + self.page_spb_local * (
            m.html_sizes + local_mo_bytes
        )
        remote = self.page_ovhd_repo + self.page_spb_repo * remote_mo_bytes
        return local, remote

    def optional_times(self, alloc: Allocation) -> np.ndarray:
        """Eq. 6 per page: expected optional download time per view.

        Remote optional downloads use the cheapest stream
        (``opt_time_remote`` — the repository at k=2).
        """
        m = self.model
        per_entry = np.where(
            alloc.opt_local, self.opt_time_local, self.opt_time_remote
        )
        weighted = m.opt_probs * per_entry
        out = np.bincount(m.opt_pages, weights=weighted, minlength=m.n_pages)
        return out * m.optional_rate_scale

    def page_times(self, alloc: Allocation) -> PageTimes:
        """Full per-page decomposition (Eq. 3-6)."""
        if self.n_streams == 2:
            local, remote = self.stream_times(
                self.local_mo_bytes(alloc), self.remote_mo_bytes(alloc)
            )
            page = np.maximum(local, remote)
            optional = self.optional_times(alloc)
            return PageTimes(
                local=local, remote=remote, page=page, optional=optional
            )
        ctx = self.ctx
        m = self.model
        local = self.page_ovhd_local + self.page_spb_local * (
            m.html_sizes + self.local_mo_bytes(alloc)
        )
        by_stream = tuple(
            ctx.page_ovhd_streams[r - 1] + ctx.page_spb_streams[r - 1] * rb
            for r, rb in enumerate(self.remote_mo_bytes_by_stream(alloc), 1)
        )
        remote = by_stream[0]
        for t in by_stream[1:]:
            remote = np.maximum(remote, t)
        page = np.maximum(local, remote)
        optional = self.optional_times(alloc)
        return PageTimes(
            local=local,
            remote=remote,
            page=page,
            optional=optional,
            by_stream=by_stream,
        )

    # ------------------------------------------------------------------
    # Eq. 7
    # ------------------------------------------------------------------
    def D1(self, alloc: Allocation) -> float:
        """:math:`D_1 = \\sum_j f(W_j)\\,Time(W_j)`."""
        times = self.page_times(alloc)
        return float(np.dot(self.model.frequencies, times.page))

    def D2(self, alloc: Allocation) -> float:
        """:math:`D_2 = \\sum_j f(W_j)\\,Time(W_j, M)`."""
        times = self.optional_times(alloc)
        return float(np.dot(self.model.frequencies, times))

    def D(self, alloc: Allocation) -> float:
        """The weighted composite objective :math:`\\alpha_1 D_1 + \\alpha_2 D_2`."""
        times = self.page_times(alloc)
        d1 = float(np.dot(self.model.frequencies, times.page))
        d2 = float(np.dot(self.model.frequencies, times.optional))
        return self.alpha1 * d1 + self.alpha2 * d2

    def objective_from_times(self, times: PageTimes) -> float:
        """``D`` from an existing :class:`PageTimes` (avoids recomputation)."""
        d1 = float(np.dot(self.model.frequencies, times.page))
        d2 = float(np.dot(self.model.frequencies, times.optional))
        return self.alpha1 * d1 + self.alpha2 * d2

    # ------------------------------------------------------------------
    # scalar helpers used by the greedy loops
    # ------------------------------------------------------------------
    @property
    def scalars(self) -> ScalarViews:
        """Plain-Python per-page views for scalar-heavy greedy loops.

        NumPy scalar indexing costs ~1 microsecond per access; the greedy
        restoration loops evaluate millions of single-page times, so they
        read these plain ``list`` views instead (built once per model in
        the shared :class:`~repro.core.context.EvalContext`).
        """
        return self.ctx.scalars

    def page_time_from_bytes(
        self, page_id: int, local_mo_bytes: float, remote_mo_bytes: float
    ) -> float:
        """Eq. 5 for a single page given its stream byte totals."""
        s = self.scalars
        tl = s.ovhd_local[page_id] + s.spb_local[page_id] * (
            s.html[page_id] + local_mo_bytes
        )
        tr = s.ovhd_repo[page_id] + s.spb_repo[page_id] * remote_mo_bytes
        return tl if tl >= tr else tr

    def page_time_from_stream_bytes(
        self, page_id: int, local_mo_bytes: float, stream_bytes
    ) -> float:
        """Eq. 5 over k streams for one page.

        ``stream_bytes[r-1]`` is stream ``r``'s byte total.  With a
        single remote stream this runs the exact expression sequence of
        :meth:`page_time_from_bytes`.
        """
        s = self.scalars
        t = s.ovhd_local[page_id] + s.spb_local[page_id] * (
            s.html[page_id] + local_mo_bytes
        )
        for ovhd_r, spb_r, rb in zip(
            s.ovhd_streams, s.spb_streams, stream_bytes
        ):
            tr = ovhd_r[page_id] + spb_r[page_id] * rb
            if tr > t:
                t = tr
        return t

    def optional_entry_delta(self, entry: int, to_local: bool) -> float:
        """Change in ``alpha2 * D2`` from flipping one optional entry.

        Positive means the objective gets worse.
        """
        diff = self.opt_time_local[entry] - self.opt_time_remote[entry]
        signed = diff if to_local else -diff
        return self.alpha2 * self.opt_freq_weight[entry] * signed

    # ------------------------------------------------------------------
    # bulk (vectorised) counterparts used by the batched greedy kernels
    # ------------------------------------------------------------------
    def bulk_page_time_from_bytes(
        self,
        page_ids: np.ndarray,
        local_mo_bytes: np.ndarray,
        remote_mo_bytes: np.ndarray,
    ) -> np.ndarray:
        """Eq. 5 for many (page, byte-total) tuples at once.

        Bit-identical to mapping :meth:`page_time_from_bytes` over the
        inputs: the expression trees match term for term, and for the
        finite nonnegative stream times ``np.maximum`` picks the same
        value as the scalar ``tl if tl >= tr else tr`` branch.
        """
        tl = self.page_ovhd_local[page_ids] + self.page_spb_local[page_ids] * (
            self.model.html_sizes[page_ids] + local_mo_bytes
        )
        tr = (
            self.page_ovhd_repo[page_ids]
            + self.page_spb_repo[page_ids] * remote_mo_bytes
        )
        return np.maximum(tl, tr)

    def bulk_page_time_from_stream_bytes(
        self,
        page_ids: np.ndarray,
        local_mo_bytes: np.ndarray,
        stream_bytes,
    ) -> np.ndarray:
        """Vectorised :meth:`page_time_from_stream_bytes`.

        ``stream_bytes`` is a sequence of k−1 arrays aligned with
        ``page_ids``.  With one remote stream this is term-for-term the
        :meth:`bulk_page_time_from_bytes` expression tree.
        """
        ctx = self.ctx
        t = self.page_ovhd_local[page_ids] + self.page_spb_local[page_ids] * (
            self.model.html_sizes[page_ids] + local_mo_bytes
        )
        for r, rb in enumerate(stream_bytes, 1):
            t = np.maximum(
                t,
                ctx.page_ovhd_streams[r - 1][page_ids]
                + ctx.page_spb_streams[r - 1][page_ids] * rb,
            )
        return t

    def bulk_optional_entry_delta(
        self, entries: np.ndarray, to_local: bool
    ) -> np.ndarray:
        """Vectorised :meth:`optional_entry_delta` over many entries."""
        diff = self.opt_time_local[entries] - self.opt_time_remote[entries]
        signed = diff if to_local else -diff
        return self.alpha2 * self.opt_freq_weight[entries] * signed

"""The paper's primary contribution: cost model, PARTITION, restoration,
off-loading, and the end-to-end replication policy.

Module map (paper section → module):

* Section 3 (system + cost model)  → :mod:`repro.core.types`,
  :mod:`repro.core.matrices`, :mod:`repro.core.cost_model`,
  :mod:`repro.core.constraints`
* Section 4.2 PARTITION            → :mod:`repro.core.partition`
* Section 4.2 constraint restoration → :mod:`repro.core.restoration`
* Section 4.2 OFF_LOADING_REPOSITORY → :mod:`repro.core.offload`
* End-to-end pipeline              → :mod:`repro.core.policy`
* Allocation state                 → :mod:`repro.core.allocation`
* ILP optimum (validation only)    → :mod:`repro.core.ilp`
"""

from repro.core.allocation import Allocation
from repro.core.constraints import (
    ConstraintReport,
    evaluate_constraints,
    local_processing_load,
    repository_load,
    storage_used,
)
from repro.core.cost_model import CostModel, PageTimes
from repro.core.matrices import MatrixSet
from repro.core.offload import OffloadConfig, OffloadOutcome, offload_repository
from repro.core.fast_partition import (
    partition_all_batched,
    partition_pages_batched,
)
from repro.core.partition import partition_page, partition_all
from repro.core.policy import PolicyResult, RepositoryReplicationPolicy
from repro.core.restoration import (
    restore_processing_capacity,
    restore_storage_capacity,
)
from repro.core.types import (
    ObjectSpec,
    PageSpec,
    RepositorySpec,
    ServerSpec,
    SystemModel,
)

__all__ = [
    "Allocation",
    "ConstraintReport",
    "CostModel",
    "MatrixSet",
    "ObjectSpec",
    "OffloadConfig",
    "OffloadOutcome",
    "PageSpec",
    "PageTimes",
    "PolicyResult",
    "RepositoryReplicationPolicy",
    "RepositorySpec",
    "ServerSpec",
    "SystemModel",
    "evaluate_constraints",
    "local_processing_load",
    "offload_repository",
    "partition_all",
    "partition_all_batched",
    "partition_page",
    "partition_pages_batched",
    "repository_load",
    "restore_processing_capacity",
    "restore_storage_capacity",
    "storage_used",
]

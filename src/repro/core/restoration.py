"""Greedy constraint restoration (Section 4.2).

The unconstrained PARTITION output may violate the storage constraint
(Eq. 10) or the local processing constraint (Eq. 8).  The paper restores
them greedily:

**Storage** — repeatedly deallocate the stored MO whose removal hurts the
objective ``D`` least, *amortised over the object's size* ("to make our
criterion more judicious over large ... objects").  After each
deallocation, pages that were downloading the victim locally are
**re-partitioned** restricted to the server's remaining replica set —
"some MOs although stored in the server may not be marked for a local
download ... marking the above MOs for local downloads can now reduce
it".  Iterate until Eq. 10 holds.

**Local processing** — repeatedly switch the (page, local MO) download
pair whose move to the repository degrades ``D`` least, amortised over
the request workload the switch sheds ("over the difference between the
new workload and the required one").  An object left with no local mark
anywhere on the server is deallocated, freeing storage too.  Iterate
until Eq. 8 holds.

Both loops use a lazily-revalidated min-heap: candidate scores are pushed
eagerly, and on pop the score is recomputed against current state —
stale entries are reinserted with their fresh score.  Whenever an action
changes a page's stream totals, fresh scores for every candidate touching
that page are pushed, so the heap always contains an up-to-date entry for
every candidate.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.allocation import Allocation, ReverseIndex
from repro.core.constraints import local_processing_load
from repro.core.cost_model import CostModel
from repro.core.fast_partition import (
    partition_pages_batched,
    partition_pages_multipath,
)
from repro.core.context import engine_kernel
from repro.core.partition import (
    Kernel,
    partition_page,
    partition_page_streams,
    resolve_kernel,
)
from repro.obs.registry import get_registry

__all__ = [
    "restore_storage_capacity",
    "restore_processing_capacity",
    "StorageRestorationStats",
    "ProcessingRestorationStats",
    "InfeasibleError",
]

_TOL = 1e-9

#: Minimum flip-set size for the batched re-partition kernel; below this
#: the scalar greedy wins on fixed dispatch overhead (results are
#: bit-identical either way).
_BATCH_MIN_PAGES = 8


def _resolve_servers(
    n_servers: int,
    server_id: int | None,
    servers: Iterable[int] | None,
) -> list[int]:
    """Normalize the two server-restriction parameters to a sorted list.

    ``server_id`` (legacy single-server form) and ``servers`` (the
    incremental re-planner's localized-repair form) are mutually
    exclusive; with neither, every server is visited.  Duplicates
    collapse and the ascending order matches the full sweep, so a
    restricted run over all servers is bit-identical to the default.
    """
    if servers is not None:
        if server_id is not None:
            raise ValueError(
                "restoration accepts either server_id or servers, not both"
            )
        out = sorted({int(i) for i in servers})
        for i in out:
            if not 0 <= i < n_servers:
                raise ValueError(
                    f"server index {i} out of range [0, {n_servers})"
                )
        return out
    if server_id is None:
        return list(range(n_servers))
    return [server_id]


class InfeasibleError(RuntimeError):
    """Raised when a constraint cannot be restored by any decision.

    For storage this means a server's hosted HTML alone exceeds its
    capacity; for processing it means even serving HTML documents exceeds
    ``C(S_i)`` — both are workload-configuration errors, not algorithmic
    states.
    """


@dataclass
class StorageRestorationStats:
    """Accounting of one storage-restoration run."""

    evictions: int = 0
    repartitioned_pages: int = 0
    objective_delta: float = 0.0
    bytes_freed: float = 0.0
    evicted_objects: list[tuple[int, int]] = field(default_factory=list)

    def merge(self, other: "StorageRestorationStats") -> None:
        self.evictions += other.evictions
        self.repartitioned_pages += other.repartitioned_pages
        self.objective_delta += other.objective_delta
        self.bytes_freed += other.bytes_freed
        self.evicted_objects.extend(other.evicted_objects)


@dataclass
class ProcessingRestorationStats:
    """Accounting of one processing-restoration run."""

    switches: int = 0
    deallocations: int = 0
    objective_delta: float = 0.0
    load_shed: float = 0.0

    def merge(self, other: "ProcessingRestorationStats") -> None:
        self.switches += other.switches
        self.deallocations += other.deallocations
        self.objective_delta += other.objective_delta
        self.load_shed += other.load_shed


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------
class _PageState:
    """Incrementally maintained per-page stream byte totals.

    Kept as plain Python lists: the greedy loops evaluate single-page
    times millions of times, and list indexing is several times faster
    than NumPy scalar indexing.

    At k=2 ``stream_bytes`` is the one-element list whose element IS
    ``remote_bytes`` (shared list object), and every method runs the
    pre-stream expression sequence verbatim; at k>2 the remote totals
    are tracked per stream and moves to remote land on the stream whose
    resulting time is lowest (ties to the lowest stream index).
    """

    def __init__(self, cost: CostModel, alloc: Allocation):
        self.cost = cost
        self.alloc = alloc
        self.k = cost.n_streams
        self.local_bytes: list[float] = cost.local_mo_bytes(alloc).tolist()
        if self.k == 2:
            self.remote_bytes: list[float] = cost.remote_mo_bytes(alloc).tolist()
            self.stream_bytes: list[list[float]] = [self.remote_bytes]
        else:
            self.stream_bytes = [
                rb.tolist() for rb in cost.remote_mo_bytes_by_stream(alloc)
            ]
            self.remote_bytes = self.stream_bytes[0]

    def page_time(self, j: int) -> float:
        if self.k == 2:
            return self.cost.page_time_from_bytes(
                j, self.local_bytes[j], self.remote_bytes[j]
            )
        return self.cost.page_time_from_stream_bytes(
            j, self.local_bytes[j], [sb[j] for sb in self.stream_bytes]
        )

    def best_stream(self, j: int, size: float) -> int:
        """Remote stream (1-based) with the lowest time after +``size``."""
        if self.k == 2:
            return 1
        s = self.cost.scalars
        best = 0
        best_t = None
        for r, (ov, sp, sb) in enumerate(
            zip(s.ovhd_streams, s.spb_streams, self.stream_bytes)
        ):
            t = ov[j] + sp[j] * (sb[j] + size)
            if best_t is None or t < best_t:
                best, best_t = r, t
        return best + 1

    def page_time_if_moved_remote(
        self, j: int, size: float, stream: int | None = None
    ) -> float:
        if self.k == 2:
            return self.cost.page_time_from_bytes(
                j, self.local_bytes[j] - size, self.remote_bytes[j] + size
            )
        r = self.best_stream(j, size) if stream is None else stream
        sb = [b[j] for b in self.stream_bytes]
        sb[r - 1] += size
        return self.cost.page_time_from_stream_bytes(
            j, self.local_bytes[j] - size, sb
        )

    def page_time_if_moved_local(
        self, j: int, size: float, stream: int = 1
    ) -> float:
        if self.k == 2:
            return self.cost.page_time_from_bytes(
                j, self.local_bytes[j] + size, self.remote_bytes[j] - size
            )
        sb = [b[j] for b in self.stream_bytes]
        sb[stream - 1] -= size
        return self.cost.page_time_from_stream_bytes(
            j, self.local_bytes[j] + size, sb
        )

    def move_remote(self, j: int, size: float, stream: int = 1) -> None:
        self.local_bytes[j] -= size
        self.stream_bytes[stream - 1][j] += size

    def move_local(self, j: int, size: float, stream: int = 1) -> None:
        self.local_bytes[j] += size
        self.stream_bytes[stream - 1][j] -= size


def _eviction_delta(
    cost: CostModel,
    alloc: Allocation,
    state: _PageState,
    server_id: int,
    object_id: int,
    rev: ReverseIndex | None = None,
) -> float:
    """Objective change from deallocating ``object_id`` at ``server_id``.

    Every page currently downloading the object locally would switch that
    download to the repository stream (Eq. 3/4 totals shift); every
    optional local mark pays the repository single-download time instead.
    The follow-up re-partitioning can only improve on this, so the score
    is a safe upper bound for ranking.
    """
    m = alloc.model
    if rev is None:
        rev = ReverseIndex.for_model(m)
    comp_e, opt_e = rev.entries_for(server_id, object_id)
    size = float(m.sizes[object_id])
    freq = cost.scalars.freq
    comp_pages = m.comp_pages
    comp_local = alloc.comp_local
    delta = 0.0
    for e in comp_e:
        if comp_local[e]:
            j = int(comp_pages[e])
            old = state.page_time(j)
            new = state.page_time_if_moved_remote(j, size)
            delta += cost.alpha1 * freq[j] * (new - old)
    opt_local = alloc.opt_local
    for e in opt_e:
        if opt_local[e]:
            delta += cost.optional_entry_delta(e, to_local=False)
    return delta


class _LazyHeap:
    """Min-heap with lazy revalidation of scores.

    Entries are ``(score, tiebreak, key)``.  ``pop_valid`` recomputes the
    score via ``rescore``; if the fresh score exceeds the stored one the
    entry is reinserted, otherwise the key is returned.  Keys may appear
    multiple times; ``alive`` filters out retired keys.
    """

    def __init__(self):
        self._heap: list[tuple[float, int, object]] = []
        self._counter = itertools.count()

    def push(self, score: float, key: object) -> None:
        heapq.heappush(self._heap, (score, next(self._counter), key))

    def pop_valid(self, rescore, alive) -> tuple[float, object] | None:
        while self._heap:
            score, _, key = heapq.heappop(self._heap)
            if not alive(key):
                continue
            fresh = rescore(key)
            if fresh > score + _TOL:
                self.push(fresh, key)
                continue
            return fresh, key
        return None

    def __len__(self) -> int:
        return len(self._heap)


# ----------------------------------------------------------------------
# storage restoration (Eq. 10)
# ----------------------------------------------------------------------
def _restore_storage_one_server(
    alloc: Allocation,
    cost: CostModel,
    state: _PageState,
    server_id: int,
    amortise: bool = True,
    kernel: Kernel = "batched",
) -> StorageRestorationStats:
    m = alloc.model
    # one O(E) reverse-index build (cached per model) shared by every score
    rev = ReverseIndex.for_model(m)
    stats = StorageRestorationStats()

    capacity = m.server_storage[server_id]
    html_bytes = float(
        m.html_sizes[np.asarray(m.pages_by_server[server_id], dtype=np.intp)].sum()
    ) if m.pages_by_server[server_id] else 0.0
    used = html_bytes + alloc.stored_bytes(server_id)
    if used <= capacity + _TOL:
        return stats
    if html_bytes > capacity + _TOL:
        raise InfeasibleError(
            f"server {server_id}: hosted HTML ({html_bytes:.0f} B) alone "
            f"exceeds storage capacity ({capacity:.0f} B)"
        )

    heap = _LazyHeap()

    def score(k: int) -> float:
        raw = _eviction_delta(cost, alloc, state, server_id, int(k), rev)
        if not amortise:
            return raw
        return raw / float(m.sizes[int(k)])

    for k in alloc.replicas[server_id]:
        heap.push(score(k), k)

    # The batched kernel takes ``allowed`` as a flat per-entry mask;
    # maintain it incrementally (replicas only shrink during restoration,
    # so clearing the victim's entries after each eviction keeps it
    # exact).
    allowed_mask: np.ndarray | None = None
    if kernel == "batched":
        allowed_mask = np.zeros(len(m.comp_objects), dtype=bool)
        rows = alloc.ctx.comp_group(server_id)[0]
        stored = alloc.replicas[server_id]
        replica_arr = np.fromiter(stored, dtype=np.intp, count=len(stored))
        allowed_mask[rows] = np.isin(m.comp_objects[rows], replica_arr)

    def repartition_flipped(pages: list[int]) -> None:
        """Re-run PARTITION for the pages an eviction touched, restricted
        to the server's remaining replica set.

        Both branches produce bit-identical marks (differential property
        suite); the batch kernel only pays off once the flip set is large
        enough to amortize its fixed NumPy dispatch cost, so small sets
        take the scalar greedy even under ``kernel="batched"``.
        """
        multipath = state.k > 2
        if kernel == "batched" and len(pages) >= _BATCH_MIN_PAGES:
            if multipath:
                batch_marks, batch_streams, _, _ = partition_pages_multipath(
                    m, page_ids=pages, allowed_mask=allowed_mask
                )
                for j in pages:
                    sl = m.comp_slice(j)
                    apply_repartition(
                        j, batch_marks[sl], batch_streams[sl]
                    )
            else:
                batch_marks, _, _ = partition_pages_batched(
                    m, page_ids=pages, allowed_mask=allowed_mask
                )
                for j in pages:
                    apply_repartition(j, batch_marks[m.comp_slice(j)])
        else:
            for j in pages:
                if multipath:
                    marks, streams, _, _ = partition_page_streams(
                        m, j, allowed=alloc.replicas[server_id]
                    )
                    apply_repartition(j, marks, streams)
                else:
                    marks, _, _ = partition_page(
                        m, j, allowed=alloc.replicas[server_id]
                    )
                    apply_repartition(j, marks)

    def apply_repartition(
        j: int, marks: np.ndarray, streams: np.ndarray | None = None
    ) -> None:
        """Install page ``j``'s re-partitioned marks, refreshing state.

        At k>2 ``streams`` carries the per-entry owning remote stream; a
        remote entry that merely changed stream still shifts the page's
        stream totals, so it counts as a change.
        """
        sl = m.comp_slice(j)
        stale: set[int] = set()
        changed = False
        for off in range(sl.stop - sl.start):
            e = sl.start + off
            new = bool(marks[off])
            k = int(m.comp_objects[e])
            if bool(alloc.comp_local[e]) != new:
                size = float(m.sizes[k])
                if new:
                    if streams is not None:
                        state.move_local(j, size, int(alloc.comp_stream[e]))
                        alloc.set_comp_local(e, True)
                    else:
                        alloc.set_comp_local(e, True)
                        state.move_local(j, size)
                else:
                    alloc.set_comp_local(e, False)
                    if streams is not None:
                        r = int(streams[off])
                        alloc.comp_stream[e] = r
                        state.move_remote(j, size, r)
                    else:
                        state.move_remote(j, size)
                changed = True
                stale.add(k)
            elif new:
                # still marked local: its eviction delta shifts with the
                # page's new stream totals
                stale.add(k)
            elif streams is not None and int(alloc.comp_stream[e]) != int(
                streams[off]
            ):
                # remote entry hopping streams: totals shift on both
                size = float(m.sizes[k])
                old_r = int(alloc.comp_stream[e])
                r = int(streams[off])
                state.stream_bytes[old_r - 1][j] -= size
                state.stream_bytes[r - 1][j] += size
                alloc.comp_stream[e] = r
                changed = True
        if changed:
            stats.repartitioned_pages += 1
            replicas = alloc.replicas[server_id]
            for k in stale:
                if k in replicas:
                    heap.push(score(k), k)

    while used > capacity + _TOL:
        popped = heap.pop_valid(
            rescore=score, alive=lambda k: k in alloc.replicas[server_id]
        )
        if popped is None:
            raise InfeasibleError(
                f"server {server_id}: storage constraint unrestorable "
                f"(used {used:.0f} B > capacity {capacity:.0f} B with no "
                "replicas left)"
            )
        delta, k = popped
        k = int(k)
        size = float(m.sizes[k])
        # flip marks to remote, updating page stream totals
        comp_e, opt_e = rev.entries_for(server_id, k)
        flipped_pages: list[int] = []
        for e in comp_e:
            if alloc.comp_local[e]:
                j = int(m.comp_pages[e])
                alloc.set_comp_local(e, False)
                if state.k > 2:
                    r = state.best_stream(j, size)
                    alloc.comp_stream[e] = r
                    state.move_remote(j, size, r)
                else:
                    state.move_remote(j, size)
                flipped_pages.append(j)
        for e in opt_e:
            if alloc.opt_local[e]:
                alloc.set_opt_local(e, False)
        alloc.replicas[server_id].discard(k)
        if allowed_mask is not None and comp_e:
            allowed_mask[list(comp_e)] = False
        used -= size
        stats.evictions += 1
        stats.bytes_freed += size
        stats.objective_delta += delta * size if amortise else delta
        stats.evicted_objects.append((server_id, k))
        # Paper: after each deallocation, try to reduce the retrieval time
        # of the affected pages using objects that are stored but unmarked.
        if flipped_pages:
            repartition_flipped(flipped_pages)
    return stats


def restore_storage_capacity(
    alloc: Allocation,
    cost: CostModel,
    server_id: int | None = None,
    amortise: bool = True,
    kernel: Kernel = "batched",
    servers: Iterable[int] | None = None,
) -> StorageRestorationStats:
    """Restore Eq. 10 in place; return accounting statistics.

    Parameters
    ----------
    alloc:
        Allocation to repair (mutated).
    cost:
        Cost model supplying the objective ``D``.
    server_id:
        Restrict to one server; default repairs every violating server.
    servers:
        Restrict to an explicit server subset (ascending sweep, as the
        default full sweep would visit them).  Mutually exclusive with
        ``server_id``.  The incremental re-planner passes the servers
        whose load or storage actually changed.
    amortise:
        Divide each candidate's objective damage by its size (the paper's
        criterion, "more judicious over large ... objects").  ``False``
        ranks by raw damage — the ablation baseline.
    kernel:
        ``"batched"`` (default) runs the whole greedy loop on the
        vectorised engine of :mod:`repro.core.fast_restoration` (bulk
        dirty-slice rescoring + array-backed lazy heap); ``"scalar"``
        keeps this module's per-candidate reference loop.  Results are
        bit-identical either way — same evictions, same order, same
        stats.

    Raises
    ------
    InfeasibleError
        If a server's HTML alone exceeds its storage capacity.
    """
    kernel = engine_kernel(resolve_kernel(kernel))
    reg = get_registry()
    stats = StorageRestorationStats()
    server_list = _resolve_servers(alloc.model.n_servers, server_id, servers)
    rescore: dict = {}
    with reg.span("restore-storage"):
        if kernel == "batched":
            from repro.core.fast_restoration import restore_storage_batched

            for i in server_list:
                stats.merge(
                    restore_storage_batched(
                        alloc,
                        cost,
                        i,
                        amortise=amortise,
                        batch_min_pages=_BATCH_MIN_PAGES,
                        counters=rescore,
                    )
                )
        else:
            state = _PageState(cost, alloc)
            for i in server_list:
                stats.merge(
                    _restore_storage_one_server(
                        alloc, cost, state, i, amortise=amortise,
                        kernel=kernel,
                    )
                )
    if reg.enabled:
        reg.count("restoration.storage.runs")
        reg.count("restoration.storage.evictions", stats.evictions)
        reg.count(
            "restoration.storage.repartitioned_pages", stats.repartitioned_pages
        )
        reg.count("restoration.storage.bytes_freed", stats.bytes_freed)
        reg.count(
            "restoration.storage.objective_delta", stats.objective_delta
        )
        if rescore:
            reg.count(
                "restoration.storage.rescore_batches", rescore.get("batches", 0)
            )
            reg.count(
                "restoration.storage.rescored_candidates",
                rescore.get("candidates", 0),
            )
    return stats


# ----------------------------------------------------------------------
# processing restoration (Eq. 8)
# ----------------------------------------------------------------------
def _candidate_load(alloc: Allocation, key: tuple[str, int]) -> float:
    """Requests/second shed by switching candidate ``key`` to remote."""
    m = alloc.model
    kind, e = key
    if kind == "comp":
        return float(m.frequencies[m.comp_pages[e]])
    j = int(m.opt_pages[e])
    return float(
        m.frequencies[j] * m.optional_rate_scale[j] * m.opt_probs[e]
    )


def _restore_processing_one_server(
    alloc: Allocation,
    cost: CostModel,
    state: _PageState,
    server_id: int,
) -> ProcessingRestorationStats:
    m = alloc.model
    stats = ProcessingRestorationStats()
    capacity = float(m.server_capacity[server_id])
    if np.isinf(capacity):
        return stats

    pages_here = np.asarray(m.pages_by_server[server_id], dtype=np.intp)
    html_load = float(m.frequencies[pages_here].sum()) if len(pages_here) else 0.0
    load = float(local_processing_load(alloc)[server_id])
    if load <= capacity + _TOL:
        return stats
    if html_load > capacity + _TOL:
        raise InfeasibleError(
            f"server {server_id}: HTML request load ({html_load:.2f} req/s) "
            f"alone exceeds processing capacity ({capacity:.2f} req/s)"
        )

    heap = _LazyHeap()

    def score(key: tuple[str, int]) -> float:
        kind, e = key
        shed = _candidate_load(alloc, key)
        if shed <= 0:
            return np.inf
        if kind == "comp":
            j = int(m.comp_pages[e])
            size = float(m.sizes[m.comp_objects[e]])
            old = state.page_time(j)
            new = state.page_time_if_moved_remote(j, size)
            raw = cost.alpha1 * m.frequencies[j] * (new - old)
        else:
            raw = cost.optional_entry_delta(e, to_local=False)
        return raw / shed

    def alive(key: tuple[str, int]) -> bool:
        kind, e = key
        return bool(
            alloc.comp_local[e] if kind == "comp" else alloc.opt_local[e]
        )

    ctx = alloc.ctx
    for e in (alloc.comp_local & (ctx.comp_server == server_id)).nonzero()[0]:
        heap.push(score(("comp", int(e))), ("comp", int(e)))
    for e in (alloc.opt_local & (ctx.opt_server == server_id)).nonzero()[0]:
        heap.push(score(("opt", int(e))), ("opt", int(e)))

    # Absolute tolerance scaled to the capacity: the running ``load``
    # accumulates one floating subtraction per switch, and a fraction-0
    # sweep must terminate exactly when only HTML requests remain.
    tol = max(_TOL, 1e-9 * max(capacity, html_load, 1.0))
    switches_since_resync = 0
    while True:
        if switches_since_resync >= 4096:
            # periodic mid-loop resync bounds accumulated drift
            load = float(local_processing_load(alloc)[server_id])
            switches_since_resync = 0
        if load <= capacity + tol:
            # The running accumulator says Eq. 8 holds — but it drifts by
            # one floating subtraction per switch, so near-tolerance
            # capacities could otherwise terminate one switch early or
            # late.  Trust only an exact recomputation to declare done.
            load = float(local_processing_load(alloc)[server_id])
            if load <= capacity + tol:
                break
        popped = heap.pop_valid(rescore=score, alive=alive)
        if popped is None:
            # no candidates left: re-verify against the exact load before
            # declaring infeasibility (the accumulator may overestimate)
            load = float(local_processing_load(alloc)[server_id])
            if load <= capacity + tol:
                break
            raise InfeasibleError(
                f"server {server_id}: processing constraint unrestorable "
                f"(load {load:.2f} req/s > capacity {capacity:.2f} req/s "
                "with no local downloads left)"
            )
        amortised, key = popped
        kind, e = key
        shed = _candidate_load(alloc, key)
        if kind == "comp":
            e = int(e)
            j = int(m.comp_pages[e])
            k = int(m.comp_objects[e])
            size = float(m.sizes[k])
            alloc.set_comp_local(e, False)
            if state.k > 2:
                r = state.best_stream(j, size)
                alloc.comp_stream[e] = r
                state.move_remote(j, size, r)
            else:
                state.move_remote(j, size)
            # every other local candidate of this page is now stale
            sl = m.comp_slice(j)
            for e2 in range(sl.start, sl.stop):
                if e2 != e and alloc.comp_local[e2]:
                    heap.push(score(("comp", e2)), ("comp", e2))
        else:
            e = int(e)
            k = int(m.opt_objects[e])
            alloc.set_opt_local(e, False)
        stats.switches += 1
        stats.load_shed += shed
        stats.objective_delta += amortised * shed
        load -= shed
        switches_since_resync += 1
        # Paper: an object no longer marked local by any page on the
        # server is deallocated, freeing storage as a bonus.
        if alloc.mark_count(server_id, k) == 0 and k in alloc.replicas[server_id]:
            alloc.replicas[server_id].discard(k)
            stats.deallocations += 1
    # the break above recomputed ``load`` exactly, so Eq. 8 provably holds
    assert load <= capacity + tol, (
        f"server {server_id}: Eq. 8 violated on exit "
        f"({load:.6f} > {capacity:.6f} + tol)"
    )
    return stats


def restore_processing_capacity(
    alloc: Allocation,
    cost: CostModel,
    server_id: int | None = None,
    kernel: Kernel = "batched",
    servers: Iterable[int] | None = None,
) -> ProcessingRestorationStats:
    """Restore Eq. 8 in place; return accounting statistics.

    ``kernel="batched"`` (default) runs the vectorised engine of
    :mod:`repro.core.fast_restoration`; ``"scalar"`` keeps the reference
    loop.  Decision sequences, stats and final allocations are
    bit-identical either way.  ``servers`` restricts the sweep to an
    explicit subset (mutually exclusive with ``server_id``); see
    :func:`restore_storage_capacity`.

    Raises
    ------
    InfeasibleError
        If a server's HTML request load alone exceeds ``C(S_i)``.
    """
    kernel = engine_kernel(resolve_kernel(kernel))
    reg = get_registry()
    stats = ProcessingRestorationStats()
    server_list = _resolve_servers(alloc.model.n_servers, server_id, servers)
    rescore: dict = {}
    with reg.span("restore-processing"):
        if kernel == "batched":
            from repro.core.fast_restoration import restore_processing_batched

            for i in server_list:
                stats.merge(
                    restore_processing_batched(alloc, cost, i, counters=rescore)
                )
        else:
            state = _PageState(cost, alloc)
            for i in server_list:
                stats.merge(
                    _restore_processing_one_server(alloc, cost, state, i)
                )
    if reg.enabled:
        reg.count("restoration.processing.runs")
        reg.count("restoration.processing.switches", stats.switches)
        reg.count("restoration.processing.deallocations", stats.deallocations)
        reg.count("restoration.processing.load_shed", stats.load_shed)
        reg.count(
            "restoration.processing.objective_delta", stats.objective_delta
        )
        if rescore:
            reg.count(
                "restoration.processing.rescore_batches",
                rescore.get("batches", 0),
            )
            reg.count(
                "restoration.processing.rescored_candidates",
                rescore.get("candidates", 0),
            )
    return stats

"""Utilisation-dependent processing delay (extension E3).

Section 3's caveat: "Another assumption made, is that the processing
time for an HTTP request is constant.  Since we assumed peak hours,
i.e., almost fixed server utilization, the above approximation is
realistic."  This module relaxes the assumption with the standard M/M/1
waiting-time blow-up: a server at utilisation ``rho`` serves each
request's processing component ``1/(1 - rho)`` times slower.

Utilisation is the allocation-induced Eq. 8/9 request load over the
respective capacity; the multiplier feeds the simulator's
``local_overhead_scale`` / ``repo_slowdown`` hooks (connection overheads
carry the processing time in the paper's latency decomposition, so the
blow-up lands there).

The E3 finding: relaxing the assumption *widens* the proposed policy's
margin over the Local policy — all-local allocations run servers near
capacity while PARTITION sheds load to the repository's idle cycles.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import Allocation
from repro.core.constraints import local_processing_load, repository_load
from repro.simulation.metrics import SimulationResult
from repro.simulation.perturbation import PAPER_PERTURBATION, PerturbationModel
from repro.workload.trace import RequestTrace

__all__ = ["utilisation_slowdowns", "simulate_with_queueing"]

#: Utilisation cap keeping the M/M/1 factor finite for overloaded servers.
MAX_UTILISATION = 0.98


def utilisation_slowdowns(
    alloc: Allocation,
    repo_capacity: float | None = None,
    max_utilisation: float = MAX_UTILISATION,
) -> tuple[np.ndarray, float]:
    """``(per-server local factors, repository factor)`` for ``alloc``.

    Factors are ``1 / (1 - min(rho, max_utilisation))`` with ``rho`` the
    Eq. 8 (resp. Eq. 9) load over capacity; infinite capacities yield a
    factor of 1 (the constant-time regime).
    """
    if not 0.0 < max_utilisation < 1.0:
        raise ValueError(
            f"max_utilisation must be in (0, 1), got {max_utilisation}"
        )
    m = alloc.model
    load = local_processing_load(alloc)
    with np.errstate(divide="ignore", invalid="ignore"):
        rho = np.where(
            np.isfinite(m.server_capacity), load / m.server_capacity, 0.0
        )
    rho = np.clip(rho, 0.0, max_utilisation)
    local = 1.0 / (1.0 - rho)

    cap_r = (
        m.repository.processing_capacity if repo_capacity is None else repo_capacity
    )
    if np.isfinite(cap_r) and cap_r > 0:
        rho_r = min(repository_load(alloc) / cap_r, max_utilisation)
        repo = 1.0 / (1.0 - rho_r)
    else:
        repo = 1.0
    return local, float(repo)


def simulate_with_queueing(
    alloc: Allocation,
    trace: RequestTrace,
    perturbation: PerturbationModel = PAPER_PERTURBATION,
    seed: int | np.random.Generator | None = 2,
    repo_capacity: float | None = None,
    max_utilisation: float = MAX_UTILISATION,
) -> SimulationResult:
    """Replay ``trace`` under ``alloc`` with utilisation-scaled overheads."""
    local, repo = utilisation_slowdowns(
        alloc, repo_capacity=repo_capacity, max_utilisation=max_utilisation
    )
    from repro.simulation.engine import expand_ragged, simulate_partition_masks

    m = trace.model
    _, entries = expand_ragged(trace.page_of_request, m.comp_indptr)
    return simulate_partition_masks(
        trace,
        alloc.comp_local[entries],
        alloc.opt_local[trace.opt_entries],
        perturbation=perturbation,
        seed=seed,
        repo_slowdown=repo,
        local_overhead_scale=local,
    )

"""Stateful replay for cache baselines (Section 5.2's ideal LRU, plus
GreedyDual-Size).

The paper compares against "an ideal LRU caching/redirection scheme with
0 redirection overhead": each local server keeps an LRU cache of
multimedia objects; a requested object found in the cache is served over
the local pipelined stream, a miss is served directly from the
repository (paying only the repository's normal connection attributes —
the *redirection* itself is free, the idealisation) and is then inserted
into the cache, evicting least-recently-used objects as needed.

Consequences the paper highlights:

* at 100% storage the cache eventually holds everything and LRU
  degenerates to the Local policy (all objects on one stream), which is
  why "LRU's performance is comparable to the local policy" there;
* LRU adapts to the realised request stream rather than to frequency
  estimates, which is its advantage at small cache sizes.

The replay is two-pass: a sequential pass over each server's requests
resolves every download to hit/miss (pure dict work), then the shared
vectorised measurement core (:func:`repro.simulation.engine.
simulate_partition_masks`) prices the resulting local/remote split.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.simulation.engine import expand_ragged, simulate_partition_masks
from repro.simulation.metrics import SimulationResult
from repro.simulation.perturbation import PAPER_PERTURBATION, PerturbationModel
from repro.util.rng import as_generator
from repro.workload.trace import RequestTrace

__all__ = ["LruCache", "GreedyDualSizeCache", "LruStats", "simulate_lru"]


class LruCache:
    """A byte-budgeted LRU cache of multimedia objects.

    ``access`` is the single entry point: it reports whether the object
    was a hit, refreshes its recency (on hit) or inserts it (on miss),
    and evicts least-recently-used objects until the budget holds.
    Objects larger than the whole budget are never cached.
    """

    def __init__(self, capacity_bytes: float):
        if capacity_bytes < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_bytes}")
        self.capacity = float(capacity_bytes)
        self._entries: OrderedDict[int, float] = OrderedDict()
        self.used = 0.0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def access(self, object_id: int, size: float, cost: float | None = None) -> bool:
        """Record an access; return ``True`` on hit.

        A hit with a *different* size (an updated object) adjusts the
        accounted bytes and may trigger evictions.  ``cost`` is accepted
        for interface parity with the cost-aware caches and ignored.
        """
        if object_id in self._entries:
            old = self._entries[object_id]
            self._entries.move_to_end(object_id)
            self.hits += 1
            if size != old:
                self._entries[object_id] = size
                self.used += size - old
                self._evict_to_fit(keep=object_id)
            return True
        self.misses += 1
        if size <= self.capacity:
            self._entries[object_id] = size
            self.used += size
            self._evict_to_fit()
        return False

    def _evict_to_fit(self, keep: int | None = None) -> None:
        while self.used > self.capacity and self._entries:
            key = next(iter(self._entries))
            if key == keep:
                if len(self._entries) == 1:
                    # the refreshed object alone exceeds the budget
                    self.used -= self._entries.pop(key)
                    self.evictions += 1
                    return
                self._entries.move_to_end(key)
                continue
            self.used -= self._entries.pop(key)
            self.evictions += 1

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class GreedyDualSizeCache:
    """GreedyDual-Size (Cao & Irani, USITS 1997) — the strongest
    size-aware web-cache policy contemporaneous with the paper.

    Each cached object carries a credit ``H = L + cost/size`` where ``L``
    is an inflating baseline; eviction removes the minimum-``H`` object
    and raises ``L`` to its credit, so objects decay unless re-accessed.
    ``cost`` is the miss penalty — here the repository download latency
    ``Ovhd(R,S_i) + Size/B(R,S_i)`` — so ``cost/size`` rewards small
    objects (their connection overhead amortises over few bytes),
    which is exactly GDS's edge over LRU.  With a cost *proportional* to
    size the credit becomes uniform and GDS provably degenerates to LRU
    (with the standard recency tie-break), a property the tests pin.

    The class mirrors :class:`LruCache`'s ``access`` interface so
    :func:`simulate_lru` accepts either via its ``cache_factory`` hook.
    """

    def __init__(self, capacity_bytes: float):
        if capacity_bytes < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity_bytes}")
        self.capacity = float(capacity_bytes)
        self._credit: dict[int, float] = {}
        self._sizes: dict[int, float] = {}
        self._touched: dict[int, int] = {}
        # lazy min-heap of (credit, touch_seq, object_id); entries whose
        # credit/touch no longer match the dicts are stale and discarded
        # on pop — the standard O(log n) GreedyDual implementation
        self._heap: list[tuple[float, int, int]] = []
        self._seq = 0
        self._baseline = 0.0
        self.used = 0.0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._credit

    def __len__(self) -> int:
        return len(self._credit)

    def _set_credit(self, object_id: int, credit: float) -> None:
        self._credit[object_id] = credit
        self._touched[object_id] = self._seq
        heapq.heappush(self._heap, (credit, self._seq, object_id))

    def _evict_one(self, protect: int | None = None) -> bool:
        deferred: tuple[float, int, int] | None = None
        while self._heap:
            credit, touched, k = heapq.heappop(self._heap)
            if (
                k not in self._credit
                or self._credit[k] != credit
                or self._touched[k] != touched
            ):
                continue  # stale entry
            if k == protect:
                deferred = (credit, touched, k)
                continue
            self._baseline = credit
            self.used -= self._sizes.pop(k)
            del self._credit[k]
            del self._touched[k]
            self.evictions += 1
            if deferred is not None:
                heapq.heappush(self._heap, deferred)
            return True
        if deferred is not None:
            heapq.heappush(self._heap, deferred)
        return False

    def access(self, object_id: int, size: float, cost: float | None = None) -> bool:
        """Record an access; return ``True`` on hit.

        ``cost`` is the miss penalty used for the credit (defaults to
        ``size``, i.e. the LRU-degenerate uniform credit).
        """
        self._seq += 1
        credit = self._baseline + (size if cost is None else cost) / max(size, 1e-12)
        if object_id in self._credit:
            self.hits += 1
            self._set_credit(object_id, credit)
            old = self._sizes[object_id]
            if size != old:
                self._sizes[object_id] = size
                self.used += size - old
                while self.used > self.capacity and self._credit:
                    self._evict_one()
            return True
        self.misses += 1
        if size <= self.capacity:
            self._sizes[object_id] = size
            self._set_credit(object_id, credit)
            self.used += size
            # never immediately evict the object just admitted unless it
            # alone still overflows the budget
            while self.used > self.capacity:
                if not self._evict_one(protect=object_id):
                    break
            if self.used > self.capacity and object_id in self._credit:
                self.used -= self._sizes.pop(object_id)
                del self._credit[object_id]
                del self._touched[object_id]
                self.evictions += 1
        return False

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class LruStats:
    """Aggregate cache behaviour of one LRU replay."""

    hits: int
    misses: int
    evictions: int
    final_bytes_by_server: np.ndarray

    @property
    def hit_rate(self) -> float:
        """Overall hit rate across all servers."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def simulate_lru(
    trace: RequestTrace,
    cache_bytes: np.ndarray | float,
    perturbation: PerturbationModel = PAPER_PERTURBATION,
    seed: int | np.random.Generator | None = 2,
    local_service_prob: float = 1.0,
    extra_remote_overhead: float = 0.0,
    cache_factory=LruCache,
) -> tuple[SimulationResult, LruStats]:
    """Replay ``trace`` through per-server LRU caches.

    Parameters
    ----------
    trace:
        The request trace (requests are processed in trace order within
        each server; caches are independent across servers).
    cache_bytes:
        Cache budget per server for multimedia objects — a scalar or a
        per-server array.  HTML documents live outside the cache (they
        are always hosted locally).
    perturbation:
        Deviation model for actual network attributes.
    seed:
        RNG for perturbations and the capacity coin-flips.
    local_service_prob:
        Models the Eq. 8 processing-capacity constraint the paper applies
        to LRU: each cache hit is actually served locally only with this
        probability (an overloaded server bounces the download to the
        repository). 1.0 = unconstrained.
    extra_remote_overhead:
        Extra redirection latency per remote download; the paper's
        *ideal* scheme uses 0.
    cache_factory:
        Cache class constructed per server with one positional byte
        budget — :class:`LruCache` (default, the paper's baseline) or
        :class:`GreedyDualSizeCache`.

    Returns
    -------
    (SimulationResult, LruStats)
    """
    m = trace.model
    rng = as_generator(seed)
    budgets = np.broadcast_to(
        np.asarray(cache_bytes, dtype=float), (m.n_servers,)
    )
    if not 0.0 <= local_service_prob <= 1.0:
        raise ValueError(
            f"local_service_prob must be in [0, 1], got {local_service_prob}"
        )

    caches = [cache_factory(budgets[i]) for i in range(m.n_servers)]

    owner, entries = expand_ragged(trace.page_of_request, m.comp_indptr)
    pair_local = np.zeros(len(entries), dtype=bool)
    opt_local = np.zeros(trace.n_optional_downloads, dtype=bool)

    # group the trace's optional downloads by owning request for ordering
    opt_by_owner: dict[int, list[int]] = {}
    for idx, r in enumerate(trace.opt_owner):
        opt_by_owner.setdefault(int(r), []).append(idx)

    # pair ranges per request (entries are laid out in request order)
    counts = m.comp_indptr[trace.page_of_request + 1] - m.comp_indptr[
        trace.page_of_request
    ]
    pair_starts = np.concatenate(([0], np.cumsum(counts)))

    sizes = m.sizes
    comp_objects = m.comp_objects
    opt_objects = m.opt_objects

    for i in range(m.n_servers):
        cache = caches[i]
        repo_ovhd = float(m.server_repo_overhead[i])
        repo_spb = 1.0 / float(m.server_repo_rate[i])
        for r in trace.requests_for_server(i):
            r = int(r)
            lo, hi = int(pair_starts[r]), int(pair_starts[r + 1])
            for p in range(lo, hi):
                k = int(comp_objects[entries[p]])
                size_k = float(sizes[k])
                hit = cache.access(k, size_k, cost=repo_ovhd + size_k * repo_spb)
                if hit and (
                    local_service_prob >= 1.0
                    or rng.random() < local_service_prob
                ):
                    pair_local[p] = True
            for d in opt_by_owner.get(r, ()):
                k = int(opt_objects[trace.opt_entries[d]])
                size_k = float(sizes[k])
                hit = cache.access(k, size_k, cost=repo_ovhd + size_k * repo_spb)
                if hit and (
                    local_service_prob >= 1.0
                    or rng.random() < local_service_prob
                ):
                    opt_local[d] = True

    result = simulate_partition_masks(
        trace,
        pair_local,
        opt_local,
        perturbation=perturbation,
        seed=rng,
        extra_remote_overhead=extra_remote_overhead,
    )
    stats = LruStats(
        hits=sum(c.hits for c in caches),
        misses=sum(c.misses for c in caches),
        evictions=sum(c.evictions for c in caches),
        final_bytes_by_server=np.array([c.used for c in caches]),
    )
    return result, stats

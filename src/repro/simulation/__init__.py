"""Request-level evaluation of allocations (Section 5.1).

The paper evaluates policies by replaying 10,000 requests per server
while the *actual* transfer rates and connection overheads deviate from
the estimations the allocation decisions used:

* :mod:`repro.simulation.perturbation` — the deviation mixture,
* :mod:`repro.simulation.engine` — vectorised replay of a trace under an
  allocation (two parallel pipelined streams per page request, fresh
  connections per optional download),
* :mod:`repro.simulation.lru_sim` — the sequential, stateful replay the
  ideal LRU baseline needs,
* :mod:`repro.simulation.metrics` — response-time aggregation.
"""

from repro.simulation.engine import simulate_allocation
from repro.simulation.lru_sim import LruCache, simulate_lru
from repro.simulation.metrics import SimulationResult
from repro.simulation.perturbation import (
    IDENTITY_PERTURBATION,
    PAPER_PERTURBATION,
    FactorMixture,
    PerturbationModel,
    UniformFactor,
)

__all__ = [
    "simulate_allocation",
    "simulate_lru",
    "LruCache",
    "SimulationResult",
    "PerturbationModel",
    "FactorMixture",
    "UniformFactor",
    "PAPER_PERTURBATION",
    "IDENTITY_PERTURBATION",
]

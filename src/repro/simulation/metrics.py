"""Response-time metrics collected by the simulators.

The figures of the paper plot the **average response time** of page
retrievals ("Increase in Response Time"); :class:`SimulationResult`
carries the raw per-request samples so percentiles, per-server
breakdowns, and the weighted composite (mirroring Eq. 7's
:math:`\\alpha_1 D_1 + \\alpha_2 D_2` weighting) are all derivable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Raw outcome of replaying one trace under one allocation."""

    page_times: np.ndarray
    """Response time of each page request (Eq. 5 with actual attributes)."""
    local_stream_times: np.ndarray
    """The local-connection component of each page request."""
    remote_stream_times: np.ndarray
    """The repository-connection component (0 when nothing was remote)."""
    optional_times: np.ndarray
    """Response time of each optional-object download in the trace."""
    server_of_request: np.ndarray
    """Hosting server per page request (for per-server breakdowns)."""

    # ------------------------------------------------------------------
    @property
    def n_requests(self) -> int:
        """Number of page requests replayed."""
        return len(self.page_times)

    @property
    def mean_page_time(self) -> float:
        """Average page response time — the figures' headline metric."""
        return float(self.page_times.mean()) if self.n_requests else 0.0

    @property
    def mean_optional_time(self) -> float:
        """Average optional-download response time."""
        return (
            float(self.optional_times.mean()) if len(self.optional_times) else 0.0
        )

    def composite_time(self, alpha1: float = 2.0, alpha2: float = 1.0) -> float:
        """Eq. 7-weighted average over all response events.

        Page requests carry weight ``alpha1``, optional downloads weight
        ``alpha2``; the result is the weighted mean response time.
        """
        wp = alpha1 * self.page_times.sum()
        wo = alpha2 * self.optional_times.sum()
        denom = alpha1 * len(self.page_times) + alpha2 * len(self.optional_times)
        return float((wp + wo) / denom) if denom else 0.0

    def percentile_page_time(self, q: float) -> float:
        """``q``-th percentile of page response time (q in [0, 100])."""
        return float(self.percentile_page_times((q,))[0])

    def percentile_page_times(self, qs) -> np.ndarray:
        """Several percentiles of page response time in one pass.

        A single :func:`numpy.percentile` call sorts the samples once
        for the whole quantile vector, so emitting the p50/p90/p95/p99
        gauge set costs one pass instead of four.
        """
        if not self.n_requests:
            return np.zeros(len(tuple(qs)))
        return np.percentile(self.page_times, qs)

    def mean_page_time_by_server(self, n_servers: int) -> np.ndarray:
        """Per-server average page response time."""
        out = np.zeros(n_servers)
        for i in range(n_servers):
            mask = self.server_of_request == i
            if mask.any():
                out[i] = self.page_times[mask].mean()
        return out

    def bottleneck_fraction_remote(self) -> float:
        """Fraction of page requests whose repository stream was the
        slower of the two (diagnoses which side limits response time)."""
        if not self.n_requests:
            return 0.0
        return float(
            (self.remote_stream_times >= self.local_stream_times).mean()
        )

    def summary(self) -> str:
        """Human-readable digest."""
        p50, p95 = self.percentile_page_times((50, 95))
        return (
            f"{self.n_requests} page requests: mean {self.mean_page_time:.2f}s, "
            f"p50 {p50:.2f}s, "
            f"p95 {p95:.2f}s; "
            f"{len(self.optional_times)} optional downloads: mean "
            f"{self.mean_optional_time:.2f}s; repo-bound fraction "
            f"{self.bottleneck_fraction_remote():.0%}"
        )

"""The Section 5.1 rate/overhead perturbation model.

"In order to simulate real life situations where the actual transfer
rates and initial overheads differ from the estimations used when
deciding about the object placement":

* **local transfer rate** — per HTTP request, 60% of requests are served
  within ±10% of the estimate, 30% at between 1/2 and 1/3 of it, and 10%
  (network congestion) at between 1/4 and 1/6;
* **repository transfer rate** — ±20% of the estimate;
* **repository connection overhead** — ±20%;
* **local connection overhead** — −10% … +50%.

All perturbations are expressed as multiplicative *factors on the
estimated rate/overhead* and are drawn independently per HTTP request
("distinct for each HTTP request", Section 3).  The asymmetry — local
attributes degrade hard while repository attributes stay near their
estimates — is deliberate: it stress-tests a policy whose estimations
led it to replicate aggressively (Section 5.1, last paragraph).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


__all__ = [
    "UniformFactor",
    "FactorMixture",
    "PerturbationModel",
    "PAPER_PERTURBATION",
    "IDENTITY_PERTURBATION",
]


@dataclass(frozen=True)
class UniformFactor:
    """A uniform multiplicative factor in ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0 < self.low <= self.high:
            raise ValueError(
                f"need 0 < low <= high, got [{self.low}, {self.high}]"
            )

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` factors."""
        if self.low == self.high:
            return np.full(n, self.low)
        return rng.uniform(self.low, self.high, size=n)

    def mean(self) -> float:
        """Expected factor."""
        return (self.low + self.high) / 2.0


@dataclass(frozen=True)
class FactorMixture:
    """A finite mixture of :class:`UniformFactor` components."""

    weights: tuple[float, ...]
    components: tuple[UniformFactor, ...]

    def __post_init__(self) -> None:
        if len(self.weights) != len(self.components):
            raise ValueError("weights and components must have equal length")
        if not self.components:
            raise ValueError("mixture needs at least one component")
        total = sum(self.weights)
        if not np.isclose(total, 1.0, atol=1e-9):
            raise ValueError(f"mixture weights must sum to 1, got {total}")
        if any(w < 0 for w in self.weights):
            raise ValueError("mixture weights must be non-negative")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` factors from the mixture."""
        out = np.empty(n)
        which = rng.choice(len(self.components), size=n, p=np.asarray(self.weights))
        for idx, comp in enumerate(self.components):
            mask = which == idx
            cnt = int(mask.sum())
            if cnt:
                out[mask] = comp.sample(rng, cnt)
        return out

    def mean(self) -> float:
        """Expected factor."""
        return float(
            sum(w * c.mean() for w, c in zip(self.weights, self.components))
        )


@dataclass(frozen=True)
class PerturbationModel:
    """Per-HTTP-request deviation factors for all four network attributes.

    Rate factors multiply the estimated *rate* (a factor of 0.5 means the
    request is served at half the estimated speed, i.e. twice the time);
    overhead factors multiply the estimated connection overhead.
    """

    local_rate: FactorMixture
    repo_rate: FactorMixture
    local_overhead: FactorMixture
    repo_overhead: FactorMixture

    def sample_local_rate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Rate factors for ``n`` local HTTP requests."""
        return self.local_rate.sample(rng, n)

    def sample_repo_rate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Rate factors for ``n`` repository HTTP requests."""
        return self.repo_rate.sample(rng, n)

    def sample_local_overhead(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Overhead factors for ``n`` local connections."""
        return self.local_overhead.sample(rng, n)

    def sample_repo_overhead(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Overhead factors for ``n`` repository connections."""
        return self.repo_overhead.sample(rng, n)


def _single(low: float, high: float) -> FactorMixture:
    return FactorMixture(weights=(1.0,), components=(UniformFactor(low, high),))


#: The Section 5.1 mixture, verbatim.
PAPER_PERTURBATION = PerturbationModel(
    local_rate=FactorMixture(
        weights=(0.60, 0.30, 0.10),
        components=(
            UniformFactor(0.90, 1.10),  # within +-10% of the estimation
            UniformFactor(1.0 / 3.0, 1.0 / 2.0),  # between 1/2 and 1/3
            UniformFactor(1.0 / 6.0, 1.0 / 4.0),  # congestion: 1/4 to 1/6
        ),
    ),
    repo_rate=_single(0.80, 1.20),
    local_overhead=_single(0.90, 1.50),
    repo_overhead=_single(0.80, 1.20),
)

#: No deviation at all — the simulation then reproduces the cost model's
#: estimated times exactly (used to cross-validate engine vs Eq. 3-6).
IDENTITY_PERTURBATION = PerturbationModel(
    local_rate=_single(1.0, 1.0),
    repo_rate=_single(1.0, 1.0),
    local_overhead=_single(1.0, 1.0),
    repo_overhead=_single(1.0, 1.0),
)

"""Vectorised replay of a request trace under a static allocation.

For every page request the engine reconstructs the two parallel
pipelined downloads of Eq. 3-5 — but with the *actual* (perturbed)
per-HTTP-request rates and per-connection overheads of Section 5.1
instead of the estimates the allocation was computed from:

* the local stream carries the HTML document plus every compulsory MO
  with ``X_jk = 1``; each transfer gets its own rate factor;
* the repository stream carries the remaining compulsory MOs; its
  connection overhead is only paid when at least one object actually
  travels on it (no connection is opened otherwise — the cost model's
  Eq. 4 keeps the constant term for planning, the measurement does not);
* each optional download in the trace opens a fresh connection to
  whichever side ``X'`` assigns it (Eq. 6's structure).

Everything is flat NumPy: the per-request object lists are expanded with
a ragged-repeat, factors are drawn in bulk, and per-request totals are
reassembled with ``bincount`` segment sums — no Python-level loop over
the ~100k requests of a Table 1 trace.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import Allocation
from repro.core.context import EvalContext
from repro.obs.registry import get_registry
from repro.simulation.metrics import SimulationResult
from repro.simulation.perturbation import PAPER_PERTURBATION, PerturbationModel
from repro.util.rng import as_generator
from repro.workload.trace import RequestTrace

__all__ = ["simulate_allocation", "simulate_partition_masks", "expand_ragged"]


def expand_ragged(
    pages: np.ndarray, indptr: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Expand per-request page ids into (owner, flat-entry) pairs.

    ``indptr`` is a CSR row-pointer array mapping page ``j`` to the
    half-open entry range ``[indptr[j], indptr[j+1])``.  Returns the
    request index owning each pair and the flat entry index, such that
    request ``r`` for page ``p`` contributes every entry of ``p`` once.
    """
    pages = np.asarray(pages, dtype=np.intp)
    counts = indptr[pages + 1] - indptr[pages]
    total = int(counts.sum())
    owner = np.repeat(np.arange(len(pages), dtype=np.intp), counts)
    if total == 0:
        return owner, np.empty(0, dtype=np.intp)
    starts = indptr[pages]
    cum = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(total, dtype=np.intp) - np.repeat(cum, counts)
    entries = np.repeat(starts, counts) + within
    return owner, entries


def simulate_partition_masks(
    trace: RequestTrace,
    pair_local: np.ndarray,
    opt_local: np.ndarray,
    perturbation: PerturbationModel = PAPER_PERTURBATION,
    seed: int | np.random.Generator | None = 2,
    extra_remote_overhead: float = 0.0,
    repo_slowdown: float = 1.0,
    local_overhead_scale: np.ndarray | None = None,
) -> SimulationResult:
    """Measure response times given *per-download* local/remote masks.

    This is the measurement core shared by the static-allocation replay
    (:func:`simulate_allocation`) and the stateful LRU replay
    (:mod:`repro.simulation.lru_sim`), whose local/remote split varies
    per request with cache contents.

    Parameters
    ----------
    trace:
        The request trace.
    pair_local:
        Boolean array over the trace's expanded ``(request, compulsory
        entry)`` pairs (see :func:`expand_ragged` with ``comp_indptr``):
        ``True`` = this download is served by the local server.
    opt_local:
        Boolean array over ``trace.opt_entries``.
    perturbation:
        Deviation model for actual vs estimated network attributes.
    seed:
        RNG for the perturbation draws.
    extra_remote_overhead:
        Additional per-connection redirection latency charged to remote
        downloads (0 models the paper's *ideal* zero-redirection scheme).
    repo_slowdown:
        Saturation multiplier on every repository-side service time
        (overhead and transfer).  Figure 3 sets this to
        ``max(1, P(R)/C(R))`` when off-loading could not restore Eq. 9:
        an over-capacity repository serves each request proportionally
        slower.  1.0 (default) models an uncongested repository.
    local_overhead_scale:
        Optional per-server multipliers on local connection overheads —
        the hook for utilisation-dependent processing delay (see
        :mod:`repro.simulation.queueing`).  ``None`` keeps the paper's
        constant-processing-time assumption.
    """
    reg = get_registry()
    with reg.span("simulate-replay"):
        result = _simulate_partition_masks(
            trace,
            pair_local,
            opt_local,
            perturbation=perturbation,
            seed=seed,
            extra_remote_overhead=extra_remote_overhead,
            repo_slowdown=repo_slowdown,
            local_overhead_scale=local_overhead_scale,
        )
    if reg.enabled:
        reg.count("simulation.replays")
        reg.count("simulation.page_requests", result.n_requests)
        reg.count("simulation.optional_downloads", len(result.optional_times))
        reg.gauge("simulation.mean_page_time", result.mean_page_time)
        quantiles = (50, 90, 95, 99)
        for q, value in zip(
            quantiles, result.percentile_page_times(quantiles)
        ):
            reg.gauge(f"simulation.p{q}_page_time", float(value))
    return result


def _simulate_partition_masks(
    trace: RequestTrace,
    pair_local: np.ndarray,
    opt_local: np.ndarray,
    perturbation: PerturbationModel = PAPER_PERTURBATION,
    seed: int | np.random.Generator | None = 2,
    extra_remote_overhead: float = 0.0,
    repo_slowdown: float = 1.0,
    local_overhead_scale: np.ndarray | None = None,
) -> SimulationResult:
    """Uninstrumented measurement core of :func:`simulate_partition_masks`."""
    if repo_slowdown < 1.0:
        raise ValueError(f"repo_slowdown must be >= 1, got {repo_slowdown}")
    m = trace.model
    rng = as_generator(seed)
    n_req = trace.n_requests
    pages = trace.page_of_request
    srv = trace.server_of_request

    spb_local_req = 1.0 / m.server_rate[srv]
    spb_repo_req = 1.0 / m.server_repo_rate[srv]

    owner, entries = trace.comp_expansion(m.comp_indptr)
    pair_local = np.asarray(pair_local, dtype=bool)
    if pair_local.shape != entries.shape:
        raise ValueError(
            f"pair_local has shape {pair_local.shape}, expected {entries.shape}"
        )
    opt_local = np.asarray(opt_local, dtype=bool)
    if opt_local.shape != trace.opt_entries.shape:
        raise ValueError(
            f"opt_local has shape {opt_local.shape}, expected "
            f"{trace.opt_entries.shape}"
        )
    ctx = EvalContext.for_model(m)
    pair_sizes = ctx.comp_sizes[entries]

    # local stream: HTML + local MOs, one rate factor per HTTP request
    html_factors = perturbation.sample_local_rate(rng, n_req)
    local_bytes_time = m.html_sizes[pages] * spb_local_req / html_factors
    lo = owner[pair_local]
    if len(lo):
        f = perturbation.sample_local_rate(rng, len(lo))
        t = pair_sizes[pair_local] * spb_local_req[lo] / f
        local_bytes_time = local_bytes_time + np.bincount(
            lo, weights=t, minlength=n_req
        )
    ovhd_scale = (
        np.ones(m.n_servers)
        if local_overhead_scale is None
        else np.asarray(local_overhead_scale, dtype=float)
    )
    if ovhd_scale.shape != (m.n_servers,):
        raise ValueError(
            f"local_overhead_scale must have shape ({m.n_servers},), got "
            f"{ovhd_scale.shape}"
        )
    if np.any(ovhd_scale < 1.0):
        raise ValueError("local_overhead_scale entries must be >= 1")
    local_overheads = (
        m.server_overhead[srv]
        * ovhd_scale[srv]
        * perturbation.sample_local_overhead(rng, n_req)
    )
    local_stream = local_overheads + local_bytes_time

    # repository stream
    ro = owner[~pair_local]
    remote_counts = np.bincount(ro, minlength=n_req)
    remote_bytes_time = np.zeros(n_req)
    if len(ro):
        f = perturbation.sample_repo_rate(rng, len(ro))
        t = pair_sizes[~pair_local] * spb_repo_req[ro] / f
        remote_bytes_time = np.bincount(ro, weights=t, minlength=n_req)
    repo_overheads = (
        m.server_repo_overhead[srv] * perturbation.sample_repo_overhead(rng, n_req)
        + extra_remote_overhead
    )
    remote_stream = np.where(
        remote_counts > 0,
        repo_slowdown * (repo_overheads + remote_bytes_time),
        0.0,
    )

    page_times = np.maximum(local_stream, remote_stream)

    # ------------------------------------------------------------------
    # optional downloads: one fresh connection each (Eq. 6)
    # ------------------------------------------------------------------
    n_opt = trace.n_optional_downloads
    optional_times = np.empty(0)
    if n_opt:
        e = trace.opt_entries
        opt_srv = ctx.opt_server[e]
        opt_sizes = ctx.opt_sizes[e]
        is_local = opt_local
        optional_times = np.empty(n_opt)
        n_loc = int(is_local.sum())
        if n_loc:
            f = perturbation.sample_local_rate(rng, n_loc)
            o = perturbation.sample_local_overhead(rng, n_loc)
            sl = opt_srv[is_local]
            optional_times[is_local] = (
                m.server_overhead[sl] * ovhd_scale[sl] * o
                + opt_sizes[is_local] / m.server_rate[sl] / f
            )
        n_rem = n_opt - n_loc
        if n_rem:
            f = perturbation.sample_repo_rate(rng, n_rem)
            o = perturbation.sample_repo_overhead(rng, n_rem)
            sr = opt_srv[~is_local]
            optional_times[~is_local] = repo_slowdown * (
                m.server_repo_overhead[sr] * o
                + extra_remote_overhead
                + opt_sizes[~is_local] / m.server_repo_rate[sr] / f
            )

    return SimulationResult(
        page_times=page_times,
        local_stream_times=local_stream,
        remote_stream_times=remote_stream,
        optional_times=optional_times,
        server_of_request=srv.copy(),
    )


def simulate_allocation(
    alloc: Allocation,
    trace: RequestTrace,
    perturbation: PerturbationModel = PAPER_PERTURBATION,
    seed: int | np.random.Generator | None = 2,
    repo_slowdown: float = 1.0,
) -> SimulationResult:
    """Measure response times for ``trace`` under a static ``alloc``.

    Parameters
    ----------
    alloc:
        The allocation (``X``/``X'``) to evaluate; must be over the same
        model the trace was sampled from.
    trace:
        Request trace (see :mod:`repro.workload.trace`).
    perturbation:
        Deviation model for actual vs estimated network attributes.
    seed:
        RNG for the perturbation draws.  Reusing the same trace and seed
        across allocations yields paired comparisons.
    repo_slowdown:
        Repository saturation multiplier (see
        :func:`simulate_partition_masks`).
    """
    if alloc.model is not trace.model:
        raise ValueError("allocation and trace must share the same SystemModel")
    m = trace.model
    _, entries = trace.comp_expansion(m.comp_indptr)
    pair_local = alloc.comp_local[entries]
    opt_local = alloc.opt_local[trace.opt_entries]
    return simulate_partition_masks(
        trace,
        pair_local,
        opt_local,
        perturbation=perturbation,
        seed=seed,
        repo_slowdown=repo_slowdown,
    )

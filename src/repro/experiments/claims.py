"""The scalar Section 5.2 claims (experiment id S1 in DESIGN.md).

The narrative around Figure 1 makes five checkable claims:

1. the Remote policy costs ~+335% response time over the unconstrained
   proposed policy,
2. the Local policy costs ~+23.8%,
3. at 100% storage, ideal LRU is comparable to the Local policy,
4. the proposed policy needs only ~65% of the storage to match LRU at
   100% ("achieves the same response time ... using around 65% of the
   capacity the other strategies need"),
5. 100% storage corresponds to ~1.8 GB per server on average.

:func:`run_headline_claims` measures all five on fresh workloads.  We
reproduce *shape*, not the paper's exact constants (their runs used
unpublished seeds); EXPERIMENTS.md records our measured values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.local import LocalPolicy
from repro.baselines.remote import RemotePolicy
from repro.core.policy import RepositoryReplicationPolicy
from repro.experiments.executor import map_run_points
from repro.experiments.runner import ExperimentConfig, RunContext
from repro.experiments.scaling import (
    clone_with_capacities,
    storage_capacities_for_fraction,
)
from repro.simulation.lru_sim import simulate_lru
from repro.util.tables import format_table
from repro.util.units import GB

__all__ = ["HeadlineClaims", "run_headline_claims"]


@dataclass
class HeadlineClaims:
    """Measured values for the five Section 5.2 scalar claims."""

    remote_increase: float
    local_increase: float
    lru_full_increase: float
    ours_at_65pct_increase: float
    avg_storage_gb: float
    n_runs: int

    def render(self) -> str:
        """ASCII table: claim, paper value, measured value."""
        rows = [
            (
                "Remote policy vs unconstrained ours",
                "+335%",
                f"{self.remote_increase:+.1%}",
            ),
            (
                "Local policy vs unconstrained ours",
                "+23.8%",
                f"{self.local_increase:+.1%}",
            ),
            (
                "Ideal LRU at 100% storage",
                "~ Local (+24%)",
                f"{self.lru_full_increase:+.1%}",
            ),
            (
                "Ours at 65% storage (vs LRU@100%)",
                "comparable",
                f"{self.ours_at_65pct_increase:+.1%}",
            ),
            (
                "Average storage at 100% (GB/server)",
                "~1.8",
                f"{self.avg_storage_gb:.2f}",
            ),
        ]
        return format_table(
            ["Claim", "paper", "measured"],
            rows,
            title=f"Section 5.2 headline claims ({self.n_runs} runs)",
        )

    @property
    def orderings_hold(self) -> bool:
        """The qualitative shape: Remote >> Local > ours(unconstrained),
        LRU@100% ~ Local, ours@65% <= LRU@100%."""
        return (
            self.remote_increase > self.local_increase > 0.0
            and self.remote_increase > 2 * self.local_increase
            and self.lru_full_increase > 0.0
            and self.ours_at_65pct_increase <= self.lru_full_increase + 0.10
        )


#: The five scalar measurements, in sweep order.
_CLAIM_POINTS: tuple[str, ...] = ("remote", "local", "storage", "lru", "ours65")


def _claims_point(ctx: RunContext, point: str) -> float:
    """Measure one of the five scalar claims on one run."""
    if point == "remote":
        return ctx.relative_increase(
            ctx.simulate(RemotePolicy().allocate(ctx.model))
        )
    if point == "local":
        return ctx.relative_increase(
            ctx.simulate(LocalPolicy().allocate(ctx.model))
        )
    if point == "storage":
        return float(ctx.reference.stored_bytes_all().mean()) / GB
    if point == "lru":
        lru_sim, _ = simulate_lru(
            ctx.trace,
            cache_bytes=ctx.reference.stored_bytes_all(),
            perturbation=ctx.config.perturbation,
            seed=ctx.sim_seed,
        )
        return ctx.relative_increase(lru_sim)
    # "ours65": the proposed policy at 65% of the unconstrained storage
    params = ctx.config.params
    caps = storage_capacities_for_fraction(ctx.model, ctx.reference, 0.65)
    clone = clone_with_capacities(ctx.model, storage=caps)
    result = RepositoryReplicationPolicy(
        alpha1=params.alpha1, alpha2=params.alpha2, kernel=ctx.config.kernel
    ).run(clone)
    sim = ctx.simulate(result.allocation, ctx.retrace(clone))
    return ctx.relative_increase(sim)


def run_headline_claims(
    config: ExperimentConfig | None = None,
) -> HeadlineClaims:
    """Measure the five scalar claims (averaged over the config's runs)."""
    cfg = config or ExperimentConfig()
    matrix = map_run_points(cfg, _claims_point, list(_CLAIM_POINTS))
    means = np.asarray(matrix, dtype=float).mean(axis=0)
    by_name = dict(zip(_CLAIM_POINTS, means))

    return HeadlineClaims(
        remote_increase=float(by_name["remote"]),
        local_increase=float(by_name["local"]),
        lru_full_increase=float(by_name["lru"]),
        ours_at_65pct_increase=float(by_name["ours65"]),
        avg_storage_gb=float(by_name["storage"]),
        n_runs=cfg.n_runs,
    )

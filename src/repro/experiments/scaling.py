"""Capacity-percentage definitions for the Figure 1-3 x-axes.

The paper sweeps "storage capacity", "local processing capacity" and
"central processing capacity" as percentages without defining the
normalisation.  We pin them down (documented in DESIGN.md) so that the
stated endpoint behaviours hold:

* **p% storage** (Figure 1) — server ``i`` gets
  ``html_bytes(i) + p x stored_bytes_unconstrained(i)``: at 100% the
  unconstrained PARTITION replica set just fits ("our policy ... is
  optimized since no constraints are imposed"), at 0% no MO can be
  replicated and the policy degenerates to Remote.
* **p% local processing** (Figures 2, 3) — server ``i`` gets
  ``html_load(i) + p x (all_local_load(i) - html_load(i))`` where the
  all-local load is the Eq. 8 LHS of the Local policy (every referenced
  MO served locally).  This mirrors Table 1, whose absolute
  ``C(S_i) = 150`` req/s sits at the all-local operating point: at 100%
  any allocation fits *with slack* (the slack is what lets servers
  absorb off-loaded repository work in Figure 3), at 0% the HTML-only
  load forces every MO download to the repository (the paper: response
  time "becomes equal to the value of the remote policy for 0%
  processing capacity"), and the constraint starts to bite only below
  the unconstrained allocation's ~80-85% utilisation — producing the
  flat-then-steep ("double exponential") Figure 2 shape the paper
  describes.
* **q% central capacity** (Figure 3) — ``C(R) = q x P(R)`` where
  ``P(R)`` is the repository workload imposed by the allocation *after*
  local restoration but *before* off-loading ("the repository can only
  serve q% of the requests" addressed to it).
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import Allocation
from repro.core.constraints import (
    html_request_load,
    local_processing_load,
    repository_load,
)
from repro.core.types import RepositorySpec, ServerSpec, SystemModel

__all__ = [
    "clone_with_capacities",
    "storage_capacities_for_fraction",
    "processing_capacities_for_fraction",
    "repo_capacity_for_fraction",
]


def clone_with_capacities(
    model: SystemModel,
    storage: np.ndarray | float | None = None,
    processing: np.ndarray | float | None = None,
    repo_capacity: float | None = None,
) -> SystemModel:
    """Copy ``model`` with replaced capacity fields.

    Pages and objects are shared (they are immutable); only the server /
    repository specs change, so the clone costs one ``SystemModel``
    construction.
    """
    n = model.n_servers
    storage_arr = (
        None if storage is None else np.broadcast_to(np.asarray(storage, float), (n,))
    )
    processing_arr = (
        None
        if processing is None
        else np.broadcast_to(np.asarray(processing, float), (n,))
    )
    servers = [
        ServerSpec(
            server_id=s.server_id,
            name=s.name,
            storage_capacity=(
                s.storage_capacity if storage_arr is None else float(storage_arr[i])
            ),
            processing_capacity=(
                s.processing_capacity
                if processing_arr is None
                else float(processing_arr[i])
            ),
            rate=s.rate,
            overhead=s.overhead,
            repo_rate=s.repo_rate,
            repo_overhead=s.repo_overhead,
        )
        for i, s in enumerate(model.servers)
    ]
    repo = (
        model.repository
        if repo_capacity is None
        else RepositorySpec(processing_capacity=float(repo_capacity))
    )
    return SystemModel(servers, repo, model.pages, model.objects)


def storage_capacities_for_fraction(
    model: SystemModel, reference: Allocation, fraction: float
) -> np.ndarray:
    """Per-server Eq. 10 capacities granting ``fraction`` of the reference
    allocation's replica bytes (HTML always fits)."""
    if fraction < 0:
        raise ValueError(f"storage fraction must be >= 0, got {fraction}")
    return model.html_bytes_by_server() + fraction * reference.stored_bytes_all()


def processing_capacities_for_fraction(
    model: SystemModel,
    fraction: float,
    reference: Allocation | None = None,
) -> np.ndarray:
    """Per-server Eq. 8 capacities granting ``fraction`` of the reference
    MO-download workload (HTML requests always fit).

    ``reference`` defaults to the **all-local** allocation (see module
    docstring); pass a different allocation to normalise against e.g.
    the unconstrained PARTITION load instead.
    """
    if fraction < 0:
        raise ValueError(f"processing fraction must be >= 0, got {fraction}")
    if reference is None:
        from repro.baselines.local import LocalPolicy

        reference = LocalPolicy().allocate(model)
    html_load = html_request_load(model)
    ref_load = local_processing_load(reference)
    return html_load + fraction * np.maximum(ref_load - html_load, 0.0)


def repo_capacity_for_fraction(alloc: Allocation, fraction: float) -> float:
    """``C(R) = fraction x`` the repository workload ``alloc`` imposes."""
    if fraction <= 0:
        raise ValueError(f"central capacity fraction must be > 0, got {fraction}")
    return fraction * repository_load(alloc)

"""Figure 1 — response time vs local storage capacity.

Protocol (Section 5.2, first experiment): the local processing
constraint is relaxed; available storage varies; the measured average
response times are reported **relative to the proposed policy with no
constraints imposed**.  Only the proposed policy and ideal LRU depend on
storage, so those are the plotted curves; Remote (≈ +335% in the paper)
and Local (≈ +23.8%) are storage-independent reference values.

The paper's stated landmarks this experiment reproduces:

* at 100% storage the proposed policy is optimal (0% increase) while LRU
  is comparable to the Local policy (~+24%),
* the proposed policy at ~65% storage matches LRU at 100%,
* at small storage both degrade toward (but stay far below) Remote.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.baselines.local import LocalPolicy
from repro.baselines.remote import RemotePolicy
from repro.core.policy import RepositoryReplicationPolicy
from repro.experiments.executor import map_run_points
from repro.experiments.runner import ExperimentConfig, RunContext, SweepResult
from repro.experiments.scaling import (
    clone_with_capacities,
    storage_capacities_for_fraction,
)
from repro.simulation.lru_sim import simulate_lru

__all__ = ["Fig1Result", "run_fig1", "DEFAULT_STORAGE_FRACTIONS"]

#: Default sweep ticks (the paper plots 20%..100%).
DEFAULT_STORAGE_FRACTIONS: tuple[float, ...] = (0.2, 0.35, 0.5, 0.65, 0.8, 1.0)


@dataclass
class Fig1Result(SweepResult):
    """Figure 1 sweep result (curves: proposed policy, ideal LRU)."""


def _fig1_point(ctx: RunContext, point: tuple):
    """One Figure 1 work unit: a reference scalar or one storage tick."""
    kind, value = point
    if kind == "scalar":
        # storage-independent baselines (paired on the same trace)
        policy = RemotePolicy() if value == "remote" else LocalPolicy()
        return ctx.relative_increase(ctx.simulate(policy.allocate(ctx.model)))
    frac = value
    params = ctx.config.params
    caps = storage_capacities_for_fraction(ctx.model, ctx.reference, frac)
    clone = clone_with_capacities(ctx.model, storage=caps)
    result = RepositoryReplicationPolicy(
        alpha1=params.alpha1, alpha2=params.alpha2, kernel=ctx.config.kernel
    ).run(clone)
    trace_c = ctx.retrace(clone)
    ours = ctx.relative_increase(ctx.simulate(result.allocation, trace_c))

    # LRU's cache budget: the same MO bytes the proposed policy
    # may replicate at this tick.
    cache_bytes = frac * ctx.reference.stored_bytes_all()
    lru_sim, _ = simulate_lru(
        ctx.trace,
        cache_bytes=cache_bytes,
        perturbation=ctx.config.perturbation,
        seed=ctx.sim_seed,
    )
    return ours, ctx.relative_increase(lru_sim)


def run_fig1(
    config: ExperimentConfig | None = None,
    fractions: Sequence[float] = DEFAULT_STORAGE_FRACTIONS,
) -> Fig1Result:
    """Regenerate Figure 1.

    Returns a :class:`Fig1Result` whose ``series`` maps
    ``"proposed"``/``"ideal-lru"`` to mean relative response-time
    increases per storage fraction, with ``scalars`` carrying the
    Remote/Local reference increases.
    """
    cfg = config or ExperimentConfig()
    points = [("scalar", "remote"), ("scalar", "local")] + [
        ("frac", float(f)) for f in fractions
    ]
    matrix = map_run_points(cfg, _fig1_point, points)
    remote_vals = [row[0] for row in matrix]
    local_vals = [row[1] for row in matrix]
    ours_runs = [[pair[0] for pair in row[2:]] for row in matrix]
    lru_runs = [[pair[1] for pair in row[2:]] for row in matrix]

    return Fig1Result(
        title="Figure 1: % increase in response time vs local storage capacity",
        x_label="storage",
        x_values=list(fractions),
        series={
            "proposed": SweepResult.aggregate(ours_runs),
            "ideal-lru": SweepResult.aggregate(lru_runs),
        },
        per_run={"proposed": ours_runs, "ideal-lru": lru_runs},
        scalars={
            "remote (all from repository)": float(np.mean(remote_vals)),
            "local (all from local server)": float(np.mean(local_vals)),
        },
        n_runs=cfg.n_runs,
    )

"""Extension E4 — what is an extra download stream worth?

The paper fixes ``k = 2`` connections per page view (local server +
repository).  The k-stream engine removes that cap: a replica mesh adds
``k - 2`` repository-grade sites per server, PARTITION becomes an
argmin-over-k, and this extension sweeps ``k`` to measure the marginal
value of each added stream.

At each ``k`` the same seed regenerates the workload — the "mesh" RNG
stream is separate, so servers, pages, and the object catalogue are
bit-identical across the whole sweep and points are perfectly paired —
and unconstrained PARTITION plans against the wider topology.  Reported
per ``k``:

* the Eq. 7 planning objective ``D`` and its change versus ``k = 2``
  (non-increasing in ``k``: a wider argmin can only shorten the planned
  download time, which the sweep asserts),
* the share of compulsory downloads sent remote at all, and
* the share carried by the mesh (streams beyond the repository).

The trace simulator models the classic two-stream page view, so this
extension reports the *analytic* cost model rather than simulated
response times; the pairing across ``k`` makes the deltas meaningful on
their own.  Expected arc: the first extra stream is worth the most
(Table 1's repository links are the bottleneck, so a second slow pipe
absorbs real traffic), with diminishing returns as further streams
split a finite byte budget ever thinner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.cost_model import CostModel
from repro.core.partition import partition_all
from repro.experiments.executor import map_run_points
from repro.experiments.runner import ExperimentConfig, RunContext
from repro.util.tables import format_table
from repro.workload.generator import generate_workload

__all__ = ["StreamsResult", "run_streams", "DEFAULT_STREAMS"]

#: Stream counts swept (2 = the paper's local + repository model).
DEFAULT_STREAMS: tuple[int, ...] = (2, 3, 4, 5)


@dataclass
class StreamsResult:
    """Per-``k`` series of the planning objective and stream shares."""

    streams: list[int]
    objective: list[float]
    """Mean Eq. 7 objective ``D`` of unconstrained PARTITION."""
    vs_two_streams: list[float]
    """Relative change of ``D`` versus the ``k = 2`` point (<= 0)."""
    remote_share: list[float]
    """Mean share of compulsory downloads marked remote."""
    mesh_share: list[float]
    """Mean share of compulsory downloads on streams beyond the
    repository (0 at ``k = 2`` by construction)."""
    n_runs: int = 0

    def render(self) -> str:
        rows = [
            (
                f"{k}",
                f"{self.objective[i]:.0f}",
                f"{self.vs_two_streams[i]:+.1%}",
                f"{self.remote_share[i]:.0%}",
                f"{self.mesh_share[i]:.0%}",
            )
            for i, k in enumerate(self.streams)
        ]
        return (
            format_table(
                [
                    "streams k",
                    "objective D",
                    "vs k=2",
                    "downloads sent remote",
                    "carried by mesh",
                ],
                rows,
                title="Extension E4: value of extra download streams",
            )
            + f"\n(averaged over {self.n_runs} runs)"
        )


def _streams_point(ctx: RunContext, k: int):
    """One stream count on one run: ``(D, remote share, mesh share)``."""
    base = ctx.config.params
    params = base.with_(
        n_streams=k,
        n_repositories=max(base.n_repositories, k - 1),
        storage_capacity=np.inf,
        processing_capacity=np.inf,
        repository_capacity=np.inf,
    )
    model = generate_workload(params, seed=ctx.trace_seed)
    alloc = partition_all(model, kernel=ctx.config.kernel)
    cost = CostModel(model, alpha1=params.alpha1, alpha2=params.alpha2)
    remote = ~alloc.comp_local
    mesh = remote & (alloc.comp_stream > 1)
    return (
        cost.D(alloc),
        float(remote.mean()),
        float(mesh.mean()),
    )


def run_streams(
    config: ExperimentConfig | None = None,
    streams: Sequence[int] = DEFAULT_STREAMS,
) -> StreamsResult:
    """Sweep the per-page stream count ``k``; see module docstring."""
    cfg = config or ExperimentConfig()
    points = [int(k) for k in streams]
    matrix = map_run_points(cfg, _streams_point, points)
    arr = np.asarray(matrix, dtype=float)  # runs x streams x 3
    objective, remote, mesh = arr.mean(axis=0).T

    base = objective[points.index(2)] if 2 in points else objective[0]
    return StreamsResult(
        streams=points,
        objective=objective.tolist(),
        vs_two_streams=[float(d / base - 1.0) for d in objective],
        remote_share=remote.tolist(),
        mesh_share=mesh.tolist(),
        n_runs=cfg.n_runs,
    )

"""Shared experiment infrastructure: paired multi-run orchestration.

Every figure experiment follows the paper's protocol:

1. generate a fresh synthetic workload per run (20 runs in the paper),
2. compute the **unconstrained** proposed policy (pure PARTITION — the
   normalisation baseline: figures report "% increase in response time"
   over it),
3. replay the *same* trace with the same perturbation seed under every
   policy/configuration of the sweep (paired comparison),
4. average relative increases across runs.

:class:`ExperimentConfig` carries the knobs; :func:`prepare_run` builds
(or fetches from the cross-sweep artifact cache) one fully-prepared
:class:`RunContext`, and :func:`iter_runs` yields one per run with the
baseline already measured.  Experiments fan the per-run sweep work out
through :mod:`repro.experiments.executor`.

Environment overrides honoured by the benchmark suite:

* ``REPRO_BENCH_RUNS``  — number of runs per experiment,
* ``REPRO_BENCH_SCALE`` — ``paper`` | ``small`` | ``tiny`` workload size,
* ``REPRO_BENCH_REQUESTS`` — trace length per server,
* ``REPRO_JOBS`` — parallel experiment workers (default 1 = serial),
* ``REPRO_KERNEL`` — ``batched`` | ``scalar`` | ``sharded`` policy kernel,
* ``REPRO_SHARDS`` — shard count for the ``sharded`` kernel,
* ``REPRO_METRICS`` — run-manifest output path (see :mod:`repro.obs`).

The integer overrides are validated on read: a non-positive or
non-integer value raises :class:`ValueError` naming the variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.core.allocation import Allocation
from repro.core.cost_model import CostModel
from repro.core.partition import resolve_kernel
from repro.core.types import SystemModel
from repro.experiments.cache import artifact_cache
from repro.obs.registry import get_registry
from repro.simulation.engine import simulate_allocation
from repro.simulation.metrics import SimulationResult
from repro.simulation.perturbation import PAPER_PERTURBATION, PerturbationModel
from repro.util.rng import RngFactory
from repro.util.tables import format_series
from repro.util.validation import env_positive_int
from repro.workload.params import WorkloadParams
from repro.workload.trace import RequestTrace, generate_trace

__all__ = [
    "ExperimentConfig",
    "RunContext",
    "prepare_run",
    "iter_runs",
    "SweepResult",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration shared by all figure experiments."""

    params: WorkloadParams = field(default_factory=WorkloadParams.paper)
    """Workload shape (Table 1 by default)."""
    n_runs: int = 20
    """Independent workload generations averaged (the paper uses 20)."""
    base_seed: int = 2000
    """Root seed; run ``r`` derives workload/trace/simulation streams."""
    perturbation: PerturbationModel = PAPER_PERTURBATION
    """Actual-vs-estimated deviation model."""
    kernel: str = "batched"
    """Policy kernel (``"batched"`` | ``"scalar"`` | ``"sharded"``); all
    bit-identical — the scalar path is the differential-testing oracle,
    the sharded path fans per-server shards over worker processes (shard
    count from ``REPRO_SHARDS``, see :mod:`repro.core.shard`)."""
    jobs: int = 1
    """Worker processes for the sweep executor (1 = serial; results are
    bit-identical either way — see :mod:`repro.experiments.executor`)."""

    @classmethod
    def quick(cls, n_runs: int = 3) -> "ExperimentConfig":
        """Small-workload configuration for tests and fast iteration."""
        return cls(params=WorkloadParams.small(), n_runs=n_runs)

    @classmethod
    def from_env(cls) -> "ExperimentConfig":
        """Honour the ``REPRO_BENCH_*`` / ``REPRO_JOBS`` environment
        overrides.

        Defaults (no environment set) are sized so the full benchmark
        suite completes in minutes: a ``small``-scale workload with 5
        runs, executed serially.  Set ``REPRO_BENCH_SCALE=paper`` and
        ``REPRO_BENCH_RUNS=20`` to reproduce the paper-scale numbers
        recorded in EXPERIMENTS.md, and ``REPRO_JOBS=<n>`` to fan the
        sweeps out over ``n`` worker processes.
        """
        scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
        presets = {
            "paper": WorkloadParams.paper,
            "small": WorkloadParams.small,
            "tiny": WorkloadParams.tiny,
        }
        if scale not in presets:
            raise ValueError(
                f"REPRO_BENCH_SCALE must be one of {sorted(presets)}, got "
                f"{scale!r}"
            )
        params = presets[scale]()
        requests = env_positive_int("REPRO_BENCH_REQUESTS")
        if requests is not None:
            params = params.with_(requests_per_server=requests)
        n_runs = env_positive_int("REPRO_BENCH_RUNS", default=5)
        jobs = env_positive_int("REPRO_JOBS", default=1)
        try:
            kernel = resolve_kernel(os.environ.get("REPRO_KERNEL"))
        except ValueError as exc:
            raise ValueError(f"REPRO_KERNEL: {exc}") from None
        return cls(params=params, n_runs=n_runs, kernel=kernel, jobs=jobs)


@dataclass
class RunContext:
    """One experiment run: a workload, its trace, and the baseline."""

    run_index: int
    config: ExperimentConfig
    model: SystemModel
    """The *relaxed* model (all capacities unconstrained)."""
    trace: RequestTrace
    cost: CostModel
    reference: Allocation
    """Unconstrained proposed-policy allocation (pure PARTITION)."""
    reference_sim: SimulationResult
    """Its simulated response times — the normalisation baseline."""
    sim_seed: int
    trace_seed: int

    @property
    def reference_mean(self) -> float:
        """Baseline mean page response time."""
        return self.reference_sim.mean_page_time

    def relative_increase(self, sim: SimulationResult) -> float:
        """``(mean - baseline) / baseline`` for a simulated result."""
        return sim.mean_page_time / self.reference_mean - 1.0

    def retrace(self, clone: SystemModel) -> RequestTrace:
        """Regenerate this run's trace over a capacity-clone of the model.

        The clone shares pages and frequencies, so with the same seed the
        trace is identical — only the ``model`` back-reference differs
        (traces and allocations are pinned to their model instance).
        """
        return generate_trace(
            clone, self.config.params, seed=self.trace_seed
        )

    def simulate(
        self,
        alloc: Allocation,
        trace: RequestTrace | None = None,
        repo_slowdown: float = 1.0,
    ) -> SimulationResult:
        """Paired simulation: same trace, same perturbation stream."""
        return simulate_allocation(
            alloc,
            trace if trace is not None else self.trace,
            perturbation=self.config.perturbation,
            seed=self.sim_seed,
            repo_slowdown=repo_slowdown,
        )


def prepare_run(
    config: ExperimentConfig,
    run_index: int,
    relaxed: bool = True,
) -> RunContext:
    """Build (or fetch from the artifact cache) one run's context.

    ``relaxed=True`` (all figures) builds the model with unconstrained
    storage/processing/repository so the reference policy reduces to
    pure PARTITION; per-figure code then clones constrained variants.

    Seeds derive exactly as they always have — run ``r`` draws its
    ``(model, trace, sim)`` streams from ``RngFactory(base_seed)`` under
    the label ``run/r`` — so contexts are bit-identical no matter which
    process prepares them, in what order, or whether the cache hits.
    The workload, trace, and unconstrained baseline are shared through
    :mod:`repro.experiments.cache` across every sweep point and
    experiment that asks for the same content address; treat them as
    read-only (clone/copy before mutating, as the sweeps already do).
    """
    params = config.params
    if relaxed:
        params = params.with_(
            storage_capacity=np.inf,
            processing_capacity=np.inf,
            repository_capacity=np.inf,
        )
    seeds = (
        RngFactory(config.base_seed)
        .generator(f"run/{run_index}")
        .integers(0, 2**31 - 1, size=3)
    )
    model_seed, trace_seed, sim_seed = (int(s) for s in seeds)
    art = artifact_cache().get(
        params=params,
        kernel=config.kernel,
        perturbation=config.perturbation,
        model_seed=model_seed,
        trace_seed=trace_seed,
        sim_seed=sim_seed,
    )
    return RunContext(
        run_index=run_index,
        config=config,
        model=art.model,
        trace=art.trace,
        cost=art.cost,
        reference=art.reference,
        reference_sim=art.reference_sim,
        sim_seed=sim_seed,
        trace_seed=trace_seed,
    )


def iter_runs(
    config: ExperimentConfig,
    relaxed: bool = True,
) -> Iterator[RunContext]:
    """Yield one fully-prepared :class:`RunContext` per run (serially).

    The historical entry point, kept for callers that drive their own
    per-run loops; sweep-style experiments go through
    :func:`repro.experiments.executor.map_run_points` instead, which
    prepares the same contexts (same cache, same seeds) in parallel.
    """
    reg = get_registry()
    for r in range(config.n_runs):
        ctx = prepare_run(config, r, relaxed=relaxed)
        if reg.enabled:
            reg.count("experiment.runs")
            reg.count("experiment.trace_requests", ctx.trace.n_requests)
        yield ctx


@dataclass
class SweepResult:
    """A figure-style result: series of relative increases over an x-axis."""

    title: str
    x_label: str
    x_values: list[float]
    series: dict[str, list[float]]
    """Mean relative increase per x tick, per curve."""
    per_run: dict[str, list[list[float]]] = field(default_factory=dict)
    """Raw per-run values (curve -> run -> x tick)."""
    scalars: dict[str, float] = field(default_factory=dict)
    """Sweep-independent reference values (e.g. Remote/Local increases)."""
    n_runs: int = 0

    def render(self) -> str:
        """ASCII rendering of the figure."""
        lines = [
            format_series(
                self.x_label,
                [f"{x:.0%}" for x in self.x_values],
                self.series,
                title=self.title,
            )
        ]
        for name, value in self.scalars.items():
            lines.append(f"{name}: {value:+.1%}")
        lines.append(f"(averaged over {self.n_runs} runs)")
        return "\n".join(lines)

    @staticmethod
    def aggregate(per_run: list[list[float]]) -> list[float]:
        """Mean across runs for each x tick."""
        arr = np.asarray(per_run, dtype=float)
        return arr.mean(axis=0).tolist()

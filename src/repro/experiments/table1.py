"""Table 1 — realised workload statistics against every nominal row.

:func:`run_table1` generates a workload + trace and tabulates, for every
Table 1 parameter, the paper's nominal value next to the realised value
in the synthetic population — the workload generator's acceptance test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.types import SystemModel
from repro.util.tables import format_table
from repro.util.units import KB, MB
from repro.workload.generator import generate_workload
from repro.workload.params import WorkloadParams
from repro.workload.trace import RequestTrace, generate_trace

__all__ = ["Table1Report", "run_table1"]


@dataclass
class Table1Report:
    """Nominal-vs-realised rows for Table 1."""

    rows: list[tuple[str, str, str]]
    model: SystemModel
    trace: RequestTrace

    def render(self) -> str:
        """ASCII table mirroring Table 1 plus a 'realised' column."""
        return format_table(
            ["Parameter", "Table 1", "realised"],
            self.rows,
            title="Table 1: workload parameters (nominal vs realised)",
        )


def _rng_str(lo: float, hi: float, fmt: str = "{:.0f}") -> str:
    return f"{fmt.format(lo)}-{fmt.format(hi)}"


def run_table1(
    params: WorkloadParams | None = None, seed: int = 0
) -> Table1Report:
    """Generate one workload and compare it against Table 1 row by row."""
    p = params or WorkloadParams.paper()
    model = generate_workload(p, seed=seed)
    trace = generate_trace(model, p, seed=seed + 1)

    pages_per_server = [len(s) for s in model.pages_by_server]
    comp_counts = np.diff(model.comp_indptr)
    opt_counts = np.diff(model.opt_indptr)
    opt_counts_nz = opt_counts[opt_counts > 0]
    frac_with_opt = float((opt_counts > 0).mean())

    # hot-page traffic share: top 10% of pages by frequency, per server
    hot_share = []
    for i in range(model.n_servers):
        ids = np.asarray(model.pages_by_server[i], dtype=np.intp)
        f = model.frequencies[ids]
        n_hot = int(np.ceil(p.hot_page_fraction * len(ids)))
        top = np.sort(f)[::-1][:n_hot]
        hot_share.append(top.sum() / f.sum())
    mos_per_server = [
        len(model.objects_referenced_by_server(i)) for i in range(model.n_servers)
    ]

    html = model.html_sizes
    mo = model.sizes

    def share(arr: np.ndarray, lo: float, hi: float) -> float:
        return float(((arr >= lo) & (arr <= hi)).mean())

    # optional requests per interested view (from the trace)
    if trace.n_optional_downloads:
        per_req = np.bincount(trace.opt_owner)
        per_req = per_req[per_req > 0]
        opt_links = opt_counts[trace.page_of_request]
        interested = np.unique(trace.opt_owner)
        req_frac = per_req / np.maximum(opt_links[interested], 1)
        realised_opt_frac = float(req_frac.mean())
        interested_share = len(interested) / max(
            int((opt_counts[trace.page_of_request] > 0).sum()), 1
        )
    else:
        realised_opt_frac = 0.0
        interested_share = 0.0

    rows: list[tuple[str, str, str]] = [
        (
            "Number of Local Sites (LS)",
            str(p.n_servers),
            str(model.n_servers),
        ),
        (
            "Number of Web Pages per LS",
            _rng_str(*p.pages_per_server),
            f"{min(pages_per_server)}-{max(pages_per_server)}",
        ),
        (
            "Hot pages traffic share (10% of pages)",
            f"{p.hot_traffic_fraction:.0%}",
            f"{np.mean(hot_share):.0%}",
        ),
        (
            "Compulsory MOs per page",
            _rng_str(*p.compulsory_per_page),
            f"{comp_counts.min()}-{comp_counts.max()} (mean {comp_counts.mean():.1f})",
        ),
        (
            "Optional MOs per page (pages that have any)",
            _rng_str(*p.optional_per_page),
            (
                f"{opt_counts_nz.min()}-{opt_counts_nz.max()}"
                if len(opt_counts_nz)
                else "none"
            ),
        ),
        (
            "Share of pages with optional MOs",
            f"{p.optional_page_fraction:.0%}",
            f"{frac_with_opt:.1%}",
        ),
        (
            "Number of MOs in the network",
            str(p.n_objects),
            str(model.n_objects),
        ),
        (
            "Number of MOs referenced per LS",
            _rng_str(*p.objects_per_server),
            f"{min(mos_per_server)}-{max(mos_per_server)}",
        ),
        (
            "Small HTML share (1K-6K)",
            "35%",
            f"{share(html, 1 * KB, 6 * KB):.1%}",
        ),
        (
            "Medium HTML share (6K-20K)",
            "60%",
            f"{share(html, 6 * KB, 20 * KB):.1%}",
        ),
        (
            "Large HTML share (20K-50K)",
            "5%",
            f"{share(html, 20 * KB, 50 * KB):.1%}",
        ),
        (
            "Small MO share (40K-300K)",
            "30%",
            f"{share(mo, 40 * KB, 300 * KB):.1%}",
        ),
        (
            "Medium MO share (300K-800K)",
            "60%",
            f"{share(mo, 300 * KB, 800 * KB):.1%}",
        ),
        (
            "Large MO share (800K-4M)",
            "10%",
            f"{share(mo, 800 * KB, 4 * MB):.1%}",
        ),
        (
            "Optional MOs requested per interested view",
            f"{p.optional_request_fraction:.0%} of links",
            f"{realised_opt_frac:.1%} of links",
        ),
        (
            "P(user requests optional MOs)",
            f"{p.optional_interest_prob:.0%}",
            f"{interested_share:.1%}",
        ),
        (
            "Processing capacity of LS (req/s)",
            f"{p.processing_capacity:g}",
            f"{model.server_capacity[0]:g}",
        ),
        (
            "Processing capacity of repository",
            "infinite",
            f"{model.repository.processing_capacity:g}",
        ),
        (
            "Overhead at LS (s)",
            _rng_str(*p.local_overhead_range, fmt="{:.3f}"),
            _rng_str(
                float(model.server_overhead.min()),
                float(model.server_overhead.max()),
                fmt="{:.3f}",
            ),
        ),
        (
            "Overhead at repository (s)",
            _rng_str(*p.repo_overhead_range, fmt="{:.3f}"),
            _rng_str(
                float(model.server_repo_overhead.min()),
                float(model.server_repo_overhead.max()),
                fmt="{:.3f}",
            ),
        ),
        (
            "LS transfer rate (KB/s)",
            _rng_str(*p.local_rate_range_kbps, fmt="{:.1f}"),
            _rng_str(
                float(model.server_rate.min() / KB),
                float(model.server_rate.max() / KB),
                fmt="{:.1f}",
            ),
        ),
        (
            "Repository transfer rate (KB/s)",
            _rng_str(*p.repo_rate_range_kbps, fmt="{:.1f}"),
            _rng_str(
                float(model.server_repo_rate.min() / KB),
                float(model.server_repo_rate.max() / KB),
                fmt="{:.1f}",
            ),
        ),
        (
            "Page requests per server",
            str(p.requests_per_server),
            str(trace.n_requests // model.n_servers),
        ),
        (
            "(alpha1, alpha2)",
            f"({p.alpha1:g}, {p.alpha2:g})",
            f"({p.alpha1:g}, {p.alpha2:g})",
        ),
    ]
    return Table1Report(rows=rows, model=model, trace=trace)

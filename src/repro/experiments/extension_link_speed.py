"""Extension E2 — when does the repository link kill the premise?

The paper's whole design rests on Table 1's asymmetry: repository links
(0.3-2 KB/s per region) are an order of magnitude slower than local
links (3-10 KB/s).  This extension scales the repository transfer rate
by a multiplier and tracks, at each point,

* the share of compulsory downloads PARTITION sends to the repository,
* the response-time advantage of the proposed policy over the Local
  policy (the parallelism dividend), and
* the advantage over the Remote policy (the replication dividend).

The expected arc: as the repository approaches and passes local speed,
PARTITION naturally shifts traffic onto it (no reconfiguration — the
cost model adapts), the gain over Local *grows* (the second connection
is worth more), and the gain over Remote shrinks toward the point where
replication stops paying at all.  Past ~8x the measured gain over Remote
can turn *negative*: the Section 5.1 perturbations degrade local links
far below their estimates, so the estimate-balanced split over-commits
to the local connection exactly when the repository could carry
everything — a concrete cost of planning from stale estimates that the
paper's regime (slow repository) never exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.baselines.local import LocalPolicy
from repro.baselines.remote import RemotePolicy
from repro.core.partition import partition_all
from repro.core.types import ServerSpec, SystemModel
from repro.experiments.executor import map_run_points
from repro.experiments.runner import ExperimentConfig, RunContext
from repro.util.tables import format_table
from repro.workload.trace import generate_trace

__all__ = ["LinkSpeedResult", "run_link_speed", "DEFAULT_MULTIPLIERS"]

#: Repository-rate multipliers swept (1 = Table 1's slow repository).
DEFAULT_MULTIPLIERS: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0)


def _scale_repo_rate(model: SystemModel, multiplier: float) -> SystemModel:
    servers = [
        ServerSpec(
            server_id=s.server_id,
            name=s.name,
            storage_capacity=s.storage_capacity,
            processing_capacity=s.processing_capacity,
            rate=s.rate,
            overhead=s.overhead,
            repo_rate=s.repo_rate * multiplier,
            repo_overhead=s.repo_overhead,
        )
        for s in model.servers
    ]
    return SystemModel(servers, model.repository, model.pages, model.objects)


@dataclass
class LinkSpeedResult:
    """Per-multiplier series of the three tracked quantities."""

    multipliers: list[float]
    remote_share: list[float]
    """Mean share of compulsory downloads PARTITION marks remote."""
    gain_vs_local: list[float]
    """Relative response-time advantage over the Local policy."""
    gain_vs_remote: list[float]
    """Relative advantage over the Remote policy."""
    n_runs: int = 0

    def render(self) -> str:
        rows = [
            (
                f"{mult:g}x",
                f"{self.remote_share[i]:.0%}",
                f"{self.gain_vs_local[i]:+.1%}",
                f"{self.gain_vs_remote[i]:+.1%}",
            )
            for i, mult in enumerate(self.multipliers)
        ]
        return (
            format_table(
                [
                    "repo rate",
                    "downloads sent remote",
                    "faster than Local by",
                    "faster than Remote by",
                ],
                rows,
                title=(
                    "Extension E2: sensitivity to the repository link speed"
                ),
            )
            + f"\n(averaged over {self.n_runs} runs)"
        )


def _link_speed_point(ctx: RunContext, mult: float):
    """One multiplier on one run: (remote share, gain vs Local/Remote)."""
    scaled = _scale_repo_rate(ctx.model, mult)
    trace = generate_trace(scaled, ctx.config.params, seed=ctx.trace_seed)
    alloc = partition_all(scaled)
    share = 1.0 - float(alloc.comp_local.mean())

    sim_ours = ctx.simulate(alloc, trace)
    sim_local = ctx.simulate(LocalPolicy().allocate(scaled), trace)
    sim_remote = ctx.simulate(RemotePolicy().allocate(scaled), trace)
    return (
        share,
        1.0 - sim_ours.mean_page_time / sim_local.mean_page_time,
        1.0 - sim_ours.mean_page_time / sim_remote.mean_page_time,
    )


def run_link_speed(
    config: ExperimentConfig | None = None,
    multipliers: Sequence[float] = DEFAULT_MULTIPLIERS,
) -> LinkSpeedResult:
    """Sweep the repository transfer rate; see module docstring."""
    cfg = config or ExperimentConfig()
    points = [float(m) for m in multipliers]
    matrix = map_run_points(cfg, _link_speed_point, points)
    arr = np.asarray(matrix, dtype=float)  # runs x multipliers x 3
    share, local, remote = arr.mean(axis=0).T

    return LinkSpeedResult(
        multipliers=list(multipliers),
        remote_share=share.tolist(),
        gain_vs_local=local.tolist(),
        gain_vs_remote=remote.tolist(),
        n_runs=cfg.n_runs,
    )

"""Content-addressed cache for per-run experiment artifacts.

Every figure/ablation experiment follows the paper's paired protocol:
run ``r`` needs the *same* synthetic workload, request trace, and
unconstrained-PARTITION baseline no matter which sweep is being
measured.  Before this cache existed each experiment regenerated all
three, so a benchmark session recomputed identical artifacts once per
benchmark file.

:class:`ArtifactCache` stores one :class:`RunArtifacts` bundle per
**content address** — the SHA-256 digest of the (already relaxed)
:class:`~repro.workload.params.WorkloadParams`, the kernel name, the
perturbation model, and the run's derived ``(model, trace, sim)`` seeds.
Two configurations that would generate bit-identical artifacts therefore
share one cache entry, across sweep points, experiments, and benchmark
files alike.  The cache is **per-process**: the parallel executor's
worker processes each hold their own (warming it on first touch and
keeping it warm across chunks because the worker pool is persistent).

Determinism contract
--------------------
A cache hit returns *exactly* what regeneration would have produced —
artifacts are pure functions of the key — so caching can never change
experiment output.  Generation records into a **throwaway registry**:
whether an artifact is rebuilt depends on process history and
worker placement, and letting it emit counters would make run manifests
depend on the execution mode.  Instead the cache

* records the wall-clock of each rebuild as an ``experiment-prepare``
  span in the caller's active registry, and
* publishes its cumulative hit/miss totals as ``executor.cache.hits`` /
  ``executor.cache.misses`` **gauges** (environment-describing, unlike
  counters which stay mode-invariant; suppressed inside executor
  workers, whose totals the parent re-publishes as
  ``executor.cache.worker_hits`` / ``worker_misses``).

Callers share the artifacts: treat the cached model/trace/reference as
read-only (experiments already do — sweep points clone the model and
copy allocations before mutating).
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Any

from repro.core.allocation import Allocation
from repro.core.context import EvalContext
from repro.core.cost_model import CostModel
from repro.core.policy import RepositoryReplicationPolicy
from repro.core.types import SystemModel
from repro.obs.manifest import WORKER_ENV_VAR
from repro.obs.registry import MetricsRegistry, get_registry, use_registry
from repro.simulation.engine import simulate_allocation
from repro.simulation.metrics import SimulationResult
from repro.simulation.perturbation import PerturbationModel
from repro.workload.generator import generate_workload
from repro.workload.params import WorkloadParams
from repro.workload.trace import RequestTrace, generate_trace

__all__ = [
    "ArtifactCache",
    "RunArtifacts",
    "params_digest",
    "artifact_cache",
    "clear_artifact_cache",
]

#: Default number of run bundles kept per process (LRU eviction).  A
#: paper-scale bundle is a few tens of MB; 64 comfortably covers a full
#: benchmark session (20 runs x a handful of configurations).
DEFAULT_CAPACITY = 64


def _digest(obj: Any) -> str:
    """SHA-256 of a dataclass's canonical JSON form."""
    payload = json.dumps(
        asdict(obj), sort_keys=True, default=repr, allow_nan=True
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def params_digest(params: WorkloadParams) -> str:
    """Content address of a workload configuration.

    Stable across processes and sessions: the digest covers every field
    of the frozen dataclass (nested size mixtures included), so any
    parameter change — and nothing else — changes the address.
    """
    return _digest(params)


@dataclass(frozen=True)
class RunArtifacts:
    """The shareable per-run bundle: workload, trace, baseline."""

    model: SystemModel
    """The generated (relaxed or constrained) system model."""
    trace: RequestTrace
    """The evaluation trace over ``model``."""
    cost: CostModel
    """The proposed policy's cost model for ``model``."""
    context: EvalContext
    """The shared columnar evaluation context for ``(model, kernel)``.

    Cached here as part of the content-addressed bundle: every sweep
    point, baseline, and simulation replay touching this model reuses
    these columns (the per-model cache keys off the model object, which
    the bundle pins alive), so derived state is built exactly once per
    cache entry."""
    reference: Allocation
    """Unconstrained proposed-policy allocation (pure PARTITION)."""
    reference_sim: SimulationResult
    """Its simulated response times — the normalisation baseline."""
    model_seed: int
    trace_seed: int
    sim_seed: int


class ArtifactCache:
    """Per-process LRU cache of :class:`RunArtifacts` (see module doc)."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._store: "OrderedDict[tuple, RunArtifacts]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        """Drop every cached bundle (hit/miss totals survive)."""
        self._store.clear()

    def stats(self) -> tuple[int, int]:
        """Cumulative ``(hits, misses)`` of this process's cache."""
        return self.hits, self.misses

    def get(
        self,
        params: WorkloadParams,
        kernel: str,
        perturbation: PerturbationModel,
        model_seed: int,
        trace_seed: int,
        sim_seed: int,
    ) -> RunArtifacts:
        """Fetch (or build and remember) one run's artifact bundle.

        ``params`` must already carry the capacities the model should be
        generated with — the relaxed/constrained decision is part of the
        content address.
        """
        key = (
            params_digest(params),
            str(kernel),
            _digest(perturbation),
            int(model_seed),
            int(trace_seed),
            int(sim_seed),
        )
        bundle = self._store.get(key)
        if bundle is not None:
            self._store.move_to_end(key)
            self.hits += 1
        else:
            self.misses += 1
            reg = get_registry()
            with reg.span("experiment-prepare"):
                # A throwaway *recording* registry: generation metrics
                # are discarded (they would make manifests depend on
                # cache state), and Policy.run sees metrics as enabled
                # so it never writes its own per-run manifest here.
                with use_registry(MetricsRegistry()):
                    bundle = self._build(
                        params, kernel, perturbation,
                        model_seed, trace_seed, sim_seed,
                    )
            self._store[key] = bundle
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)
        self._publish()
        return bundle

    @staticmethod
    def _build(
        params: WorkloadParams,
        kernel: str,
        perturbation: PerturbationModel,
        model_seed: int,
        trace_seed: int,
        sim_seed: int,
    ) -> RunArtifacts:
        model = generate_workload(params, seed=model_seed)
        trace = generate_trace(model, params, seed=trace_seed)
        policy = RepositoryReplicationPolicy(
            alpha1=params.alpha1, alpha2=params.alpha2, kernel=kernel
        )
        result = policy.run(model)
        cost = policy.cost_model(model)
        reference_sim = simulate_allocation(
            result.allocation,
            trace,
            perturbation=perturbation,
            seed=sim_seed,
        )
        return RunArtifacts(
            model=model,
            trace=trace,
            cost=cost,
            context=EvalContext.for_model(model, kernel=kernel),
            reference=result.allocation,
            reference_sim=reference_sim,
            model_seed=model_seed,
            trace_seed=trace_seed,
            sim_seed=sim_seed,
        )

    def _publish(self) -> None:
        """Gauge the cumulative totals (parent process only)."""
        if os.environ.get(WORKER_ENV_VAR):
            return
        reg = get_registry()
        if reg.enabled:
            reg.gauge("executor.cache.hits", self.hits)
            reg.gauge("executor.cache.misses", self.misses)


_CACHE = ArtifactCache()


def artifact_cache() -> ArtifactCache:
    """This process's shared artifact cache."""
    return _CACHE


def clear_artifact_cache() -> None:
    """Drop every bundle from this process's cache (cold-start helper
    for fair benchmark timings; worker caches are cleared by recycling
    the pool — see :func:`repro.experiments.executor.shutdown_pool`)."""
    _CACHE.clear()

"""Parallel experiment execution: fan ``(run, sweep-point)`` units out.

The paper's protocol averages every figure over independently generated
workloads and sweeps many configurations against the *same* paired
run — a grid of ``n_runs x n_points`` work units with **no data
dependencies between them**: every unit is a pure function of
``(ExperimentConfig, run_index, point)`` because runs derive isolated
RNG streams (:class:`~repro.util.rng.RngFactory`) and paired simulation
re-seeds per call.  :func:`map_run_points` exploits exactly that:

* units are dispatched in **run-major chunks** over a persistent
  :class:`~concurrent.futures.ProcessPoolExecutor`, so one chunk mostly
  touches one run and the worker's
  :class:`~repro.experiments.cache.ArtifactCache` turns the remaining
  per-unit artifact lookups into hits;
* ``jobs=1`` (the default) takes a **serial fallback path** with no
  pool, no pickling, and no behaviour change from the historical
  in-line loops;
* results are reassembled in unit order, so the parallel output is
  **bit-identical** to the serial output (asserted by
  ``tests/experiments/test_executor.py`` and ``benchmarks/bench_executor.py``);
* each worker chunk records into its own
  :class:`~repro.obs.registry.MetricsRegistry`; the parent merges the
  snapshots *in unit order* (counters added, spans appended, gauges
  last-write-wins), so merged run-manifest counters and deterministic
  gauges are independent of the worker count.  The execution
  environment itself is described by gauges: ``executor.workers``,
  ``executor.cache.*``.

Worker count resolution: an explicit ``jobs`` argument wins, then the
:class:`~repro.experiments.runner.ExperimentConfig` ``jobs`` field, and
the config default honours the ``REPRO_JOBS`` environment variable
(validated — non-positive or non-integer values are rejected naming the
variable).  The CLI exposes the same knob as ``--jobs``.
"""

from __future__ import annotations

import atexit
import math
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence

from repro.experiments.cache import artifact_cache
from repro.experiments.runner import ExperimentConfig, RunContext, prepare_run
from repro.obs.manifest import WORKER_ENV_VAR
from repro.obs.registry import MetricsRegistry, get_registry, use_registry
from repro.util.validation import env_positive_int

__all__ = [
    "resolve_jobs",
    "map_runs",
    "map_run_points",
    "persistent_pool",
    "shutdown_pool",
]


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve the worker count: explicit value, else ``REPRO_JOBS``, else 1.

    Raises :class:`ValueError` for non-positive or non-integer values,
    naming the offending source.
    """
    if jobs is None:
        return env_positive_int("REPRO_JOBS", default=1)
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ValueError(f"jobs must be a positive integer, got {jobs!r}")
    if jobs <= 0:
        raise ValueError(f"jobs must be a positive integer, got {jobs}")
    return jobs


# ----------------------------------------------------------------------
# persistent worker pool
# ----------------------------------------------------------------------
_POOL: ProcessPoolExecutor | None = None
_POOL_SIZE = 0


def _worker_init() -> None:
    """Mark the process as an executor worker (manifest paths pick up a
    per-worker suffix — see :func:`repro.obs.manifest.resolve_manifest_path`)."""
    os.environ[WORKER_ENV_VAR] = str(os.getpid())


def _get_pool(jobs: int) -> ProcessPoolExecutor:
    """A persistent pool of at least ``jobs`` workers.

    Persistence is what makes the cross-sweep artifact cache effective
    in parallel mode: workers survive between experiments, so the runs
    they prepared for Figure 1 are cache hits for Figure 2.
    """
    global _POOL, _POOL_SIZE
    if _POOL is None or _POOL_SIZE < jobs:
        if _POOL is not None:
            _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = ProcessPoolExecutor(
            max_workers=jobs, initializer=_worker_init
        )
        _POOL_SIZE = jobs
    return _POOL


def persistent_pool(jobs: int | None = None) -> ProcessPoolExecutor:
    """The persistent worker pool, for injection into lower layers.

    ``repro.core.shard`` takes its worker pool as a parameter (the
    layering lint forbids it importing this module); callers that want
    the sharded policy kernel to share this executor's warm workers pass
    ``pool=persistent_pool(n)`` to the policy.  ``jobs`` resolves like
    :func:`resolve_jobs` (explicit → ``REPRO_JOBS`` → 1).
    """
    return _get_pool(resolve_jobs(jobs))


def shutdown_pool() -> None:
    """Tear down the persistent worker pool (and its warm caches).

    Benchmarks call this between timed phases so a "cold" measurement
    really is cold; normal code never needs to."""
    global _POOL, _POOL_SIZE
    if _POOL is not None:
        _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = None
        _POOL_SIZE = 0


atexit.register(shutdown_pool)


# ----------------------------------------------------------------------
# work-unit execution
# ----------------------------------------------------------------------
def _run_chunk(
    config: ExperimentConfig,
    relaxed: bool,
    fn: Callable[[RunContext, Any], Any],
    chunk: list[tuple[int, int, Any]],
    record: bool,
) -> tuple[list[tuple[int, Any]], dict | None, tuple[int, int]]:
    """Execute one chunk of ``(unit_index, run_index, point)`` units.

    Runs in a worker process.  Returns the payloads tagged with their
    unit index, the chunk's metrics snapshot (when the parent is
    recording), and the worker cache's hit/miss delta for this chunk.
    """
    cache = artifact_cache()
    hits0, misses0 = cache.stats()
    results: list[tuple[int, Any]] = []
    registry = MetricsRegistry() if record else None
    with use_registry(registry):
        for unit_index, run_index, point in chunk:
            ctx = prepare_run(config, run_index, relaxed=relaxed)
            results.append((unit_index, fn(ctx, point)))
    hits1, misses1 = cache.stats()
    snapshot = registry.snapshot() if registry is not None else None
    return results, snapshot, (hits1 - hits0, misses1 - misses0)


class _RunOnly:
    """Adapter making a per-run function usable as a point function.

    A module-level class (rather than a closure) so instances pickle
    into worker processes.
    """

    def __init__(self, fn: Callable[[RunContext], Any]):
        self.fn = fn

    def __call__(self, ctx: RunContext, point: Any) -> Any:
        return self.fn(ctx)


def _chunked(
    units: list[tuple[int, int, Any]], chunksize: int
) -> list[list[tuple[int, int, Any]]]:
    return [units[i : i + chunksize] for i in range(0, len(units), chunksize)]


def map_run_points(
    config: ExperimentConfig,
    fn: Callable[[RunContext, Any], Any],
    points: Sequence[Any],
    *,
    relaxed: bool = True,
    jobs: int | None = None,
    chunksize: int | None = None,
) -> list[list[Any]]:
    """Evaluate ``fn(ctx, point)`` for every ``(run, point)`` pair.

    Returns a ``n_runs x len(points)`` matrix of payloads, indexed
    ``[run_index][point_index]`` — identical regardless of ``jobs``.

    Parameters
    ----------
    config:
        The experiment configuration; ``config.n_runs`` spans the run
        axis and ``config.jobs`` is the default worker count.
    fn:
        A **picklable** (module-level) callable.  It receives a fully
        prepared :class:`~repro.experiments.runner.RunContext` (from the
        artifact cache) and one entry of ``points``, and must depend on
        nothing else — every work unit may execute in a different
        process.
    points:
        The sweep axis.  Entries must be picklable and self-contained
        (tuples carrying the sweep parameters).
    relaxed:
        Passed through to :func:`~repro.experiments.runner.prepare_run`.
    jobs:
        Worker count override; defaults to ``config.jobs``.
    chunksize:
        Units per dispatched task.  The default targets two chunks per
        worker, capped at one run's worth of points so a chunk rarely
        straddles runs (keeping worker cache locality).
    """
    jobs = resolve_jobs(config.jobs if jobs is None else jobs)
    n_points = len(points)
    units = [
        (r * n_points + p, r, points[p])
        for r in range(config.n_runs)
        for p in range(n_points)
    ]
    reg = get_registry()
    if reg.enabled:
        reg.count("experiment.runs", config.n_runs)
        reg.count("executor.units", len(units))

    payloads: list[Any] = [None] * len(units)
    effective_jobs = min(jobs, len(units))
    if effective_jobs <= 1:
        if reg.enabled:
            reg.gauge("executor.workers", 1)
        with reg.span("experiment-sweep"):
            for unit_index, run_index, point in units:
                ctx = prepare_run(config, run_index, relaxed=relaxed)
                payloads[unit_index] = fn(ctx, point)
    else:
        if chunksize is None:
            chunksize = max(
                1, min(n_points, math.ceil(len(units) / (effective_jobs * 2)))
            )
        chunks = _chunked(units, chunksize)
        if reg.enabled:
            reg.gauge("executor.workers", effective_jobs)
            reg.gauge("executor.chunks", len(chunks))
        pool = _get_pool(effective_jobs)
        with reg.span("experiment-sweep"):
            futures = [
                pool.submit(_run_chunk, config, relaxed, fn, chunk, reg.enabled)
                for chunk in chunks
            ]
            worker_hits = worker_misses = 0
            # Collect in chunk (= unit) order: merge order is then
            # deterministic and identical to the serial recording order.
            for future in futures:
                results, snapshot, (hits, misses) = future.result()
                for unit_index, payload in results:
                    payloads[unit_index] = payload
                if snapshot is not None:
                    reg.merge_snapshot(snapshot)
                worker_hits += hits
                worker_misses += misses
        if reg.enabled:
            reg.gauge("executor.cache.worker_hits", worker_hits)
            reg.gauge("executor.cache.worker_misses", worker_misses)

    return [
        payloads[r * n_points : (r + 1) * n_points]
        for r in range(config.n_runs)
    ]


def map_runs(
    config: ExperimentConfig,
    fn: Callable[[RunContext], Any],
    *,
    relaxed: bool = True,
    jobs: int | None = None,
) -> list[Any]:
    """Evaluate ``fn(ctx)`` once per run (one work unit per run).

    The run-granular convenience wrapper over :func:`map_run_points`;
    ``fn`` must be picklable (module-level) just the same.
    """
    matrix = map_run_points(
        config, _RunOnly(fn), [None], relaxed=relaxed, jobs=jobs
    )
    return [row[0] for row in matrix]

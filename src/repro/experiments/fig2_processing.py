"""Figure 2 — response time vs local processing capacity (100% storage).

Protocol (Section 5.2, second experiment): storage is fixed at 100% (the
unconstrained replica set fits) while each server's Eq. 8 processing
capacity is swept from 100% down to 0% of the unconstrained allocation's
MO-download workload.  The paper reports a "double exponential" shape:

* above ~60% capacity the increase is marginal — processing restoration
  sheds the *cheapest* downloads first, and the most traffic-consuming
  objects stay local;
* below ~60% the increase accelerates, reaching the Remote policy's
  level at 0% (every MO download is forced onto the repository stream).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.baselines.remote import RemotePolicy
from repro.core.policy import RepositoryReplicationPolicy
from repro.experiments.executor import map_run_points
from repro.experiments.runner import ExperimentConfig, RunContext, SweepResult
from repro.experiments.scaling import (
    clone_with_capacities,
    processing_capacities_for_fraction,
    storage_capacities_for_fraction,
)

__all__ = ["Fig2Result", "run_fig2", "DEFAULT_PROCESSING_FRACTIONS"]

#: Default sweep ticks (the paper plots 0%..100%).
DEFAULT_PROCESSING_FRACTIONS: tuple[float, ...] = (
    0.0,
    0.1,
    0.2,
    0.3,
    0.4,
    0.5,
    0.6,
    0.7,
    0.8,
    0.9,
    1.0,
)


@dataclass
class Fig2Result(SweepResult):
    """Figure 2 sweep result (curve: proposed policy)."""


def _fig2_point(ctx: RunContext, point: tuple):
    """One Figure 2 work unit: the Remote scalar or one processing tick."""
    kind, value = point
    if kind == "scalar":
        return ctx.relative_increase(
            ctx.simulate(RemotePolicy().allocate(ctx.model))
        )
    params = ctx.config.params
    storage_caps = storage_capacities_for_fraction(ctx.model, ctx.reference, 1.0)
    proc_caps = processing_capacities_for_fraction(ctx.model, value)
    clone = clone_with_capacities(
        ctx.model, storage=storage_caps, processing=proc_caps
    )
    result = RepositoryReplicationPolicy(
        alpha1=params.alpha1, alpha2=params.alpha2, kernel=ctx.config.kernel
    ).run(clone)
    sim = ctx.simulate(result.allocation, ctx.retrace(clone))
    return ctx.relative_increase(sim)


def run_fig2(
    config: ExperimentConfig | None = None,
    fractions: Sequence[float] = DEFAULT_PROCESSING_FRACTIONS,
) -> Fig2Result:
    """Regenerate Figure 2."""
    cfg = config or ExperimentConfig()
    points = [("scalar", "remote")] + [("frac", float(f)) for f in fractions]
    matrix = map_run_points(cfg, _fig2_point, points)
    remote_vals = [row[0] for row in matrix]
    ours_runs = [row[1:] for row in matrix]

    return Fig2Result(
        title=(
            "Figure 2: % increase in response time vs local processing "
            "capacity (100% storage)"
        ),
        x_label="processing",
        x_values=list(fractions),
        series={"proposed": SweepResult.aggregate(ours_runs)},
        per_run={"proposed": ours_runs},
        scalars={
            "remote (all from repository)": float(np.mean(remote_vals)),
        },
        n_runs=cfg.n_runs,
    )

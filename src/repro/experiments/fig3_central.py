"""Figure 3 — response time vs local capacity for constrained repository.

Protocol (Section 5.2, third experiment): with 100% storage, local
processing capacities sweep as in Figure 2 while the repository's
capacity ``C(R)`` is fixed at 90%, 70% or 50% of the workload the
pre-off-loading allocation imposes on it; OFF_LOADING_REPOSITORY then
pushes the excess back onto the servers.

The paper's observations this experiment reproduces:

* with local capacities >= 70%, even a repository serving only 50% of
  its requests keeps the increase acceptable (~+40% over unconstrained);
* when local capacities drop to 50-60%, the increase is significant even
  at 90% central capacity — **local capacity dominates central
  capacity**: an off-loaded request needs local slack to land somewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.offload import OffloadConfig, offload_repository
from repro.core.policy import RepositoryReplicationPolicy
from repro.experiments.executor import map_run_points
from repro.experiments.runner import ExperimentConfig, RunContext, SweepResult
from repro.experiments.scaling import (
    clone_with_capacities,
    processing_capacities_for_fraction,
    repo_capacity_for_fraction,
    storage_capacities_for_fraction,
)

__all__ = [
    "Fig3Result",
    "run_fig3",
    "DEFAULT_LOCAL_FRACTIONS",
    "DEFAULT_CENTRAL_FRACTIONS",
]

#: Local-capacity sweep (x-axis).
DEFAULT_LOCAL_FRACTIONS: tuple[float, ...] = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
#: Central-capacity curves (the paper's 90%, 70%, 50%).
DEFAULT_CENTRAL_FRACTIONS: tuple[float, ...] = (0.9, 0.7, 0.5)


@dataclass
class Fig3Result(SweepResult):
    """Figure 3 sweep result (one curve per central-capacity level)."""


def _fig3_point(ctx: RunContext, point: tuple):
    """One Figure 3 work unit: one local-capacity tick, every central curve.

    The central-capacity levels share this unit's phases 1-3 policy run
    (the repository is unconstrained there), so they travel together as
    ``(local_fraction, central_fractions)`` and the unit returns one
    value per central level.
    """
    lf, central_fractions = point
    params = ctx.config.params
    storage_caps = storage_capacities_for_fraction(ctx.model, ctx.reference, 1.0)
    proc_caps = processing_capacities_for_fraction(ctx.model, lf)
    clone = clone_with_capacities(
        ctx.model, storage=storage_caps, processing=proc_caps
    )
    # phases 1-3 (repository unconstrained here)
    policy = RepositoryReplicationPolicy(
        alpha1=params.alpha1, alpha2=params.alpha2, kernel=ctx.config.kernel
    )
    pre = policy.run(clone)
    trace_c = ctx.retrace(clone)
    cost_c = policy.cost_model(clone)
    values: list[float] = []
    for q in central_fractions:
        alloc_q = pre.allocation.copy()
        capacity = repo_capacity_for_fraction(alloc_q, q)
        outcome = offload_repository(
            alloc_q, cost_c, OffloadConfig(), capacity=capacity
        )
        # An unrestored Eq. 9 means the repository runs saturated:
        # every repository-side service slows by P(R)/C(R).
        slowdown = max(1.0, outcome.final_repo_load / capacity)
        sim = ctx.simulate(alloc_q, trace_c, repo_slowdown=slowdown)
        values.append(ctx.relative_increase(sim))
    return values


def run_fig3(
    config: ExperimentConfig | None = None,
    local_fractions: Sequence[float] = DEFAULT_LOCAL_FRACTIONS,
    central_fractions: Sequence[float] = DEFAULT_CENTRAL_FRACTIONS,
) -> Fig3Result:
    """Regenerate Figure 3."""
    cfg = config or ExperimentConfig()
    central = tuple(float(q) for q in central_fractions)
    points = [(float(lf), central) for lf in local_fractions]
    matrix = map_run_points(cfg, _fig3_point, points)
    runs: dict[float, list[list[float]]] = {
        q: [[tick[qi] for tick in row] for row in matrix]
        for qi, q in enumerate(central_fractions)
    }

    return Fig3Result(
        title=(
            "Figure 3: % increase in response time vs local processing "
            "capacity, for constrained central (repository) capacity"
        ),
        x_label="local capacity",
        x_values=list(local_fractions),
        series={
            f"central {q:.0%}": SweepResult.aggregate(runs[q])
            for q in central_fractions
        },
        per_run={f"central {q:.0%}": runs[q] for q in central_fractions},
        n_runs=cfg.n_runs,
    )

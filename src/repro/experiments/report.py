"""One-shot reproduction report: every paper artifact in a single run.

:func:`reproduce_all` executes Table 1, Figures 1-3 and the headline
claims on one :class:`~repro.experiments.runner.ExperimentConfig` and
assembles a combined text report (with optional ASCII charts).  This is
what ``python -m repro reproduce`` prints, and what a reviewer would run
first.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.claims import HeadlineClaims, run_headline_claims
from repro.experiments.fig1_storage import Fig1Result, run_fig1
from repro.experiments.fig2_processing import Fig2Result, run_fig2
from repro.experiments.fig3_central import Fig3Result, run_fig3
from repro.experiments.runner import ExperimentConfig
from repro.experiments.table1 import Table1Report, run_table1
from repro.util.charts import series_chart

__all__ = ["ReproductionReport", "reproduce_all"]


@dataclass
class ReproductionReport:
    """All five paper artifacts from one configuration."""

    table1: Table1Report
    fig1: Fig1Result
    fig2: Fig2Result
    fig3: Fig3Result
    claims: HeadlineClaims
    config: ExperimentConfig

    @property
    def all_shapes_hold(self) -> bool:
        """The coarse acceptance predicate: every headline ordering."""
        fig1_ok = all(
            o <= l + 0.05
            for o, l in zip(
                self.fig1.series["proposed"], self.fig1.series["ideal-lru"]
            )
        )
        ys = self.fig2.series["proposed"]
        fig2_ok = ys[0] > ys[-1] and abs(ys[-1]) < 0.05
        f3 = self.fig3.series
        keys = sorted(f3.keys())  # "central 50%" < "central 70%" < "central 90%"
        fig3_ok = all(
            f3[keys[0]][i] >= f3[keys[-1]][i] - 0.05
            for i in range(len(self.fig3.x_values))
        )
        return bool(
            self.claims.orderings_hold and fig1_ok and fig2_ok and fig3_ok
        )

    def render(self, charts: bool = False) -> str:
        """The combined report; ``charts=True`` appends bar charts."""
        parts = [
            "=" * 72,
            "REPRODUCTION REPORT — Loukopoulos & Ahmad, IPPS 2000",
            f"workload: {self.config.params.n_servers} servers, "
            f"{self.config.params.n_objects} MOs, "
            f"{self.config.n_runs} runs",
            "=" * 72,
            "",
            self.table1.render(),
            "",
            self.claims.render(),
            "",
            self.fig1.render(),
            "",
            self.fig2.render(),
            "",
            self.fig3.render(),
            "",
            f"ALL PAPER SHAPES HOLD: {self.all_shapes_hold}",
        ]
        if charts:
            parts.extend(
                [
                    "",
                    series_chart(
                        [f"{x:.0%}" for x in self.fig1.x_values],
                        self.fig1.series,
                        title="Figure 1 (bars)",
                    ),
                    "",
                    series_chart(
                        [f"{x:.0%}" for x in self.fig2.x_values],
                        self.fig2.series,
                        title="Figure 2 (bars)",
                    ),
                ]
            )
        return "\n".join(parts)


def reproduce_all(config: ExperimentConfig | None = None) -> ReproductionReport:
    """Run every paper artifact under one configuration."""
    cfg = config or ExperimentConfig()
    return ReproductionReport(
        table1=run_table1(cfg.params, seed=cfg.base_seed),
        fig1=run_fig1(cfg),
        fig2=run_fig2(cfg),
        fig3=run_fig3(cfg),
        claims=run_headline_claims(cfg),
        config=cfg,
    )

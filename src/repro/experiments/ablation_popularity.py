"""Ablation A5 — where does the win come from: replication or balancing?

At equal storage budgets, four strategies are compared:

* the proposed policy (D-aware replica set + PARTITION marking),
* popularity-per-byte replicas with *all-stored-local* marking (a
  conventional push cache),
* the same popularity replicas with *balanced* marking (PARTITION
  restricted to the stored set),
* ideal LRU with the same cache bytes.

The headline is two-sided: with generous storage, balanced marking
alone recovers essentially the whole gap (the two-parallel-connections
insight carries the paper there); at tight budgets the *replica
selection* dominates — popularity-per-byte hoards small popular objects
while the balanced split needs the right large objects on disk, which is
exactly what the policy's size-amortised D-aware eviction provides.

The measurement core lives here (so the CLI, tests, and benchmarks run
the same sweep through the parallel executor);
``benchmarks/bench_ablation_popularity.py`` asserts its claims and
records the artifact table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.baselines.popularity import PopularityPolicy
from repro.core.policy import RepositoryReplicationPolicy
from repro.experiments.executor import map_run_points
from repro.experiments.runner import ExperimentConfig, RunContext
from repro.experiments.scaling import (
    clone_with_capacities,
    storage_capacities_for_fraction,
)
from repro.simulation.lru_sim import simulate_lru
from repro.util.tables import format_table

__all__ = [
    "AblationResult",
    "run_ablation_popularity",
    "DEFAULT_FRACTIONS",
    "STRATEGIES",
]

#: Storage budgets compared (tight and generous).
DEFAULT_FRACTIONS: tuple[float, ...] = (0.5, 1.0)
#: Strategy labels, in table-column order.
STRATEGIES: tuple[str, ...] = (
    "proposed",
    "popularity all-stored",
    "popularity balanced",
    "ideal-lru",
)


@dataclass
class AblationResult:
    """Per-run relative increases for every ``(fraction, strategy)`` cell."""

    fractions: list[float]
    per_run: dict[tuple[float, str], list[float]] = field(default_factory=dict)
    """``(fraction, strategy) -> one value per run``."""
    n_runs: int = 0

    def mean(self, fraction: float, strategy: str) -> float:
        """Across-run mean for one table cell."""
        return float(np.mean(self.per_run[(fraction, strategy)]))

    def render(self) -> str:
        """The A5 artifact table."""
        return format_table(
            ["storage"] + list(STRATEGIES),
            [
                tuple(
                    [f"{frac:.0%}"]
                    + [f"{self.mean(frac, s):+.1%}" for s in STRATEGIES]
                )
                for frac in self.fractions
            ],
            title=(
                "Ablation A5: replica selection vs stream balancing "
                "(% increase over unconstrained proposed)"
            ),
        )


def _ablation_point(ctx: RunContext, frac: float) -> tuple:
    """One storage budget on one run: all four strategies, paired."""
    budget = frac * ctx.reference.stored_bytes_all()
    caps = storage_capacities_for_fraction(ctx.model, ctx.reference, frac)
    clone = clone_with_capacities(ctx.model, storage=caps)
    trace_c = ctx.retrace(clone)

    ours = RepositoryReplicationPolicy().run(clone).allocation
    values = [ctx.relative_increase(ctx.simulate(ours, trace_c))]
    for marking in ("all-stored", "balanced"):
        alloc = PopularityPolicy(
            storage_bytes=budget, marking=marking
        ).allocate(ctx.model)
        values.append(ctx.relative_increase(ctx.simulate(alloc)))
    lru_sim, _ = simulate_lru(
        ctx.trace,
        cache_bytes=budget,
        perturbation=ctx.config.perturbation,
        seed=ctx.sim_seed,
    )
    values.append(ctx.relative_increase(lru_sim))
    return tuple(values)


def run_ablation_popularity(
    config: ExperimentConfig | None = None,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
) -> AblationResult:
    """Run the A5 ablation (one work unit per ``(run, budget)`` pair)."""
    cfg = config or ExperimentConfig()
    points = [float(f) for f in fractions]
    matrix = map_run_points(cfg, _ablation_point, points)
    per_run = {
        (frac, s): [matrix[r][fi][si] for r in range(cfg.n_runs)]
        for fi, frac in enumerate(points)
        for si, s in enumerate(STRATEGIES)
    }
    return AblationResult(
        fractions=points, per_run=per_run, n_runs=cfg.n_runs
    )

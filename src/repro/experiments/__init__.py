"""Experiment harnesses regenerating the paper's evaluation (Section 5).

One module per paper artifact:

* :mod:`repro.experiments.table1`  — realised workload statistics against
  every Table 1 row,
* :mod:`repro.experiments.fig1_storage` — Figure 1 (response time vs
  local storage, ours vs ideal LRU, Remote/Local reference lines),
* :mod:`repro.experiments.fig2_processing` — Figure 2 (response time vs
  local processing capacity at 100% storage),
* :mod:`repro.experiments.fig3_central` — Figure 3 (response time vs
  local processing capacity for 90/70/50% central capacity),
* :mod:`repro.experiments.claims` — the scalar Section 5.2 claims
  (Remote +335%, Local +23.8%, LRU@100% ≈ Local, ~1.8 GB average),
* :mod:`repro.experiments.ablation_popularity` — the A5 ablation
  (replica selection vs stream balancing at equal budgets).

Shared infrastructure lives in :mod:`repro.experiments.runner`
(multi-run orchestration, paired traces, normalisation to the
unconstrained policy), :mod:`repro.experiments.scaling` (the
capacity-percentage definitions documented in DESIGN.md),
:mod:`repro.experiments.cache` (the content-addressed per-run artifact
cache), and :mod:`repro.experiments.executor` (the ``(run, point)``
work-unit fan-out — serial by default, multi-process with
``jobs``/``REPRO_JOBS``, bit-identical either way).
"""

from repro.experiments.ablation_popularity import (
    AblationResult,
    run_ablation_popularity,
)
from repro.experiments.cache import (
    ArtifactCache,
    RunArtifacts,
    artifact_cache,
    clear_artifact_cache,
    params_digest,
)
from repro.experiments.claims import HeadlineClaims, run_headline_claims
from repro.experiments.executor import (
    map_run_points,
    map_runs,
    resolve_jobs,
    shutdown_pool,
)
from repro.experiments.fig1_storage import Fig1Result, run_fig1
from repro.experiments.fig2_processing import Fig2Result, run_fig2
from repro.experiments.fig3_central import Fig3Result, run_fig3
from repro.experiments.runner import (
    ExperimentConfig,
    RunContext,
    iter_runs,
    prepare_run,
)
from repro.experiments.scaling import (
    clone_with_capacities,
    processing_capacities_for_fraction,
    repo_capacity_for_fraction,
    storage_capacities_for_fraction,
)
from repro.experiments.table1 import Table1Report, run_table1

__all__ = [
    "ExperimentConfig",
    "RunContext",
    "iter_runs",
    "prepare_run",
    "ArtifactCache",
    "RunArtifacts",
    "artifact_cache",
    "clear_artifact_cache",
    "params_digest",
    "map_run_points",
    "map_runs",
    "resolve_jobs",
    "shutdown_pool",
    "AblationResult",
    "Fig1Result",
    "Fig2Result",
    "Fig3Result",
    "HeadlineClaims",
    "Table1Report",
    "run_ablation_popularity",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_headline_claims",
    "run_table1",
    "clone_with_capacities",
    "storage_capacities_for_fraction",
    "processing_capacities_for_fraction",
    "repo_capacity_for_fraction",
]
